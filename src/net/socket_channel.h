/**
 * @file
 * Real socket transport for the two-party protocols.
 *
 * SocketChannel implements the Channel interface over a connected
 * stream socket — TCP (with TCP_NODELAY, so the interactive SPCOT
 * rounds are not Nagle-delayed) or Unix-domain. It is the transport
 * under src/svc: the COT service daemon accepts one SocketChannel per
 * client session, and the client library drives its engine half over
 * the mirror endpoint.
 *
 * Framing: writes are buffered and leave the process as length-framed
 * records ([u32 payload length][payload]). A frame is cut when the
 * endpoint turns around to receive (recvBytes flushes pending writes
 * first — a party about to block on its peer must have pushed
 * everything the peer needs), when the buffer crosses
 * kFlushThreshold, or on explicit flush(). The reader reassembles
 * frames into a drain-and-reuse receive buffer, so steady-state
 * traffic performs no heap allocation on either side once the buffers
 * have grown to the protocol's burst size — the same property
 * MemoryDuplex provides in-process. Inbound frames larger than
 * kMaxFrameBytes are rejected (Protocol error) before any allocation:
 * a corrupted or hostile length field must not become an allocation.
 *
 * Accounting mirrors MemoryDuplex: bytesSent()/bytesReceived() count
 * payload bytes (frame headers excluded, so byte counts are
 * transport-independent), and turns() counts direction changes
 * observed at this endpoint — a classic half-duplex protocol with r
 * round trips shows ~2r turns across both endpoints, which is what
 * the analytic NetworkModel consumes. The counters are relaxed
 * atomics so an observer thread (the session reaper) can watch for
 * progress without racing the protocol thread.
 *
 * Failure semantics: every transport error throws net::WireError with
 * the class a caller needs to pick retry-vs-abandon — PeerClosed for
 * EOF/reset, Deadline when a configured recv/send timeout expires,
 * Protocol for malformed frames (see wire_error.h). Deadlines are
 * poll-based: setRecvTimeout/setSendTimeout bound every blocking
 * kernel call, so a stalled peer cannot pin this thread forever.
 *
 * Test instrumentation (zero cost when unused): setFaultPlan arms one
 * deterministic fault (fault.h), setSimulatedDelay injects per-turn
 * latency, setSimulatedBandwidth paces flushed frames to a link rate
 * — together they turn the analytic LAN/WAN models into measured
 * conditions and make failure handling testable on loopback.
 */

#ifndef IRONMAN_NET_SOCKET_CHANNEL_H
#define IRONMAN_NET_SOCKET_CHANNEL_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/channel.h"
#include "net/fault.h"
#include "net/wire_error.h"

namespace ironman::net {

/** Channel endpoint over a connected stream socket. */
class SocketChannel final : public Channel
{
  public:
    /** Frames are cut early once this many buffered bytes accumulate. */
    static constexpr size_t kFlushThreshold = size_t(256) << 10;

    /**
     * Largest inbound frame accepted. Generous (the validity bound on
     * wire params allows ~1 GB of blocks per extension) but finite, so
     * a corrupted length header is a typed Protocol error instead of a
     * multi-gigabyte allocation.
     */
    static constexpr uint32_t kMaxFrameBytes = uint32_t(1) << 30;

    /**
     * Adopt a connected socket. @p tcp_nodelay disables Nagle (ignored
     * for non-TCP sockets).
     */
    explicit SocketChannel(int fd, bool tcp_nodelay = true);
    ~SocketChannel() override;

    SocketChannel(const SocketChannel &) = delete;
    SocketChannel &operator=(const SocketChannel &) = delete;

    void sendBytes(const void *data, size_t len) override;
    void recvBytes(void *data, size_t len) override;
    uint64_t bytesSent() const override
    {
        return sent.load(std::memory_order_relaxed);
    }

    /** Push any buffered writes out as one frame. */
    void flush();

    /** Payload bytes received so far. */
    uint64_t bytesReceived() const
    {
        return received.load(std::memory_order_relaxed);
    }

    /** Direction changes observed at this endpoint. */
    uint64_t turns() const
    {
        return turnCount.load(std::memory_order_relaxed);
    }

    /** The underlying file descriptor (for shutdown() by an owner). */
    int fd() const { return sock; }

    /**
     * Peer identity for per-client policy: the numeric remote address
     * (no port) for TCP, "unix:uid:<uid>" for Unix-domain peers (from
     * SO_PEERCRED — kernel-asserted, unlike an IP, so local quota
     * buckets are per user instead of one shared "unix" bucket),
     * "unknown" when the socket cannot say. Captured at construction.
     */
    const std::string &peerAddress() const { return peer; }

    /**
     * Shut down both directions of the socket, waking any thread
     * blocked in recvBytes() (it will throw). Safe to call from
     * another thread; close happens in the destructor.
     */
    void shutdownBoth();

    /**
     * Bound every blocking recv: once no bytes arrive for this long,
     * recvBytes throws WireError{Deadline}. 0 disables (wait forever).
     * Servers MUST set this on session channels — it is what turns a
     * stalled peer from a pinned thread into a typed error.
     */
    void setRecvTimeout(uint64_t ms) { recvTimeoutMs = ms; }
    uint64_t recvTimeoutMs_() const { return recvTimeoutMs; }

    /** Same bound for blocking sends (a peer that stopped reading). */
    void setSendTimeout(uint64_t ms) { sendTimeoutMs = ms; }

    /**
     * Arm one deterministic fault (see fault.h). One-shot: after it
     * fires the channel behaves normally again (where "normally" may
     * mean "is closed").
     */
    void setFaultPlan(const FaultPlan &plan)
    {
        fault = plan;
        faultDone = false;
    }

    /** Whether the armed fault has fired. */
    bool faultFired() const { return fault.armed() && faultDone; }

    /**
     * Inject simulated one-way latency: every direction turnaround
     * into receiving sleeps this long before reading, so a protocol
     * with r round trips at this endpoint pays ~r delays — the wire
     * format is untouched (no timestamps, no negotiation) and byte
     * accounting is unchanged. Enable on one endpoint with the full
     * RTT, or on both with the one-way delay, for the same total.
     * Benches use this to turn the analytic LAN/WAN rows into
     * measured ones and to expose round-latency hiding (request
     * pipelining) even on loopback.
     */
    void setSimulatedDelay(uint64_t one_way_us) { delayUs = one_way_us; }
    uint64_t simulatedDelayUs() const { return delayUs; }

    /**
     * Pace flushed frames to a link rate: after each frame's payload
     * is written, sleep payload_bits / rate. Combined with
     * setSimulatedDelay this completes the NetworkModel (bandwidth +
     * propagation) as a measured condition. 0 disables.
     */
    void setSimulatedBandwidth(uint64_t bits_per_sec)
    {
        bandwidthBps = bits_per_sec;
    }
    uint64_t simulatedBandwidthBps() const { return bandwidthBps; }

  private:
    void writeAll(const uint8_t *data, size_t len);
    void writeFrames(size_t from);
    void applySendFault();
    void applyTurnFault();
    void readFrame();
    void pollOrThrow(short events, uint64_t timeout_ms,
                     const char *what);

    int sock = -1;
    std::string peer; ///< quota key; see peerAddress()
    std::vector<uint8_t> txBuf; ///< unframed pending payload
    std::vector<uint8_t> rxBuf; ///< reassembled payload, [rxPos, size)
    size_t rxPos = 0;
    std::atomic<uint64_t> sent{0};
    std::atomic<uint64_t> received{0};
    std::atomic<uint64_t> turnCount{0};
    uint64_t wireSent = 0; ///< payload bytes actually flushed
    uint64_t delayUs = 0; ///< simulated one-way latency per turnaround
    uint64_t bandwidthBps = 0; ///< simulated link rate, 0 = unshaped
    uint64_t recvTimeoutMs = 0; ///< 0 = block forever
    uint64_t sendTimeoutMs = 0;
    FaultPlan fault;
    bool faultDone = false;
    int lastDir = -1; ///< 0 = sending, 1 = receiving
};

// ---------------------------------------------------------------------------
// Connection helpers (throw net::WireError on failure)
// ---------------------------------------------------------------------------

/**
 * Bind + listen on 127.0.0.1:@p port (0 = ephemeral). Returns the
 * listening fd; query the bound port with tcpListenPort().
 */
int tcpListen(uint16_t port, int backlog = 16);

/** Port a tcpListen() fd is bound to. */
uint16_t tcpListenPort(int listen_fd);

/**
 * Accept one connection; returns -1 when the listener was closed or
 * shut down (the accept loop's exit signal).
 */
int acceptOn(int listen_fd);

/**
 * Connect to @p host:@p port (numeric host, e.g. "127.0.0.1"). A
 * refused or timed-out connect throws WireError{Transient} — the
 * server may be mid-restart, which is precisely the retry case.
 * @p bind_host optionally binds the SOURCE address first (any
 * 127.0.0.0/8 address works unprivileged on loopback) — tests use it
 * to give an adversarial client its own quota identity.
 */
std::unique_ptr<SocketChannel> tcpConnect(const std::string &host,
                                          uint16_t port,
                                          const std::string &bind_host =
                                              std::string());

/** Bind + listen on a Unix-domain path (unlinked first if stale). */
int unixListen(const std::string &path);

/** Connect to a Unix-domain listener. */
std::unique_ptr<SocketChannel> unixConnect(const std::string &path);

/**
 * A connected Unix-domain socket pair — the in-process way to exercise
 * the real-socket code path (tests).
 */
std::pair<std::unique_ptr<SocketChannel>, std::unique_ptr<SocketChannel>>
socketChannelPair();

} // namespace ironman::net

#endif // IRONMAN_NET_SOCKET_CHANNEL_H
