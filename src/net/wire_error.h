/**
 * @file
 * Typed transport/protocol error taxonomy for the serving stack.
 *
 * Everything that can go wrong between two parties on a wire falls
 * into one of a handful of classes, and which class it is decides the
 * caller's next move — retry on a fresh connection, give up on the
 * request, or give up on the configuration. Bare std::runtime_error
 * cannot carry that verdict, so the socket transport, the COT service
 * client/server, and the inference client/server all throw WireError
 * instead (it still IS a runtime_error, so existing catch sites keep
 * working unchanged).
 *
 * Classes:
 *
 *   Transient   — the operation failed but nothing is known to be
 *                 poisoned: connect refused (daemon restarting), an
 *                 injected stall, a wire hiccup before any protocol
 *                 state was exchanged. Retry with backoff.
 *   PeerClosed  — the peer went away (EOF, ECONNRESET, EPIPE). The
 *                 session is dead; a NEW session may work. Retryable.
 *   Deadline    — a recv/send/stock deadline expired: the peer is
 *                 stalled or wedged, not provably gone. The session is
 *                 abandoned; a new one may work. Retryable.
 *   Protocol    — the bytes were wrong: bad magic, an oversized or
 *                 zero-length frame, an opcode out of range, a depth
 *                 violation. One of the two ends is buggy or hostile;
 *                 retrying the same exchange would fail the same way.
 *   Fatal       — the server answered and said no (quota, allowlist,
 *                 unknown model), or the local configuration is
 *                 impossible. Retrying cannot help.
 *
 * Retry policy consumes exactly one bit of this: retryable() — see
 * svc::RetryPolicy.
 */

#ifndef IRONMAN_NET_WIRE_ERROR_H
#define IRONMAN_NET_WIRE_ERROR_H

#include <stdexcept>
#include <string>

namespace ironman::net {

enum class WireFault
{
    Transient = 0,
    PeerClosed = 1,
    Deadline = 2,
    Protocol = 3,
    Fatal = 4,
};

const char *wireFaultName(WireFault f);

class WireError : public std::runtime_error
{
  public:
    WireError(WireFault fault, const std::string &what)
        : std::runtime_error(what), fault_(fault)
    {
    }

    WireFault fault() const { return fault_; }

    /** Whether a fresh connection/session could plausibly succeed. */
    bool
    retryable() const
    {
        return fault_ == WireFault::Transient ||
               fault_ == WireFault::PeerClosed ||
               fault_ == WireFault::Deadline;
    }

  private:
    WireFault fault_;
};

inline const char *
wireFaultName(WireFault f)
{
    switch (f) {
      case WireFault::Transient: return "transient";
      case WireFault::PeerClosed: return "peer-closed";
      case WireFault::Deadline: return "deadline";
      case WireFault::Protocol: return "protocol";
      case WireFault::Fatal: return "fatal";
    }
    return "?";
}

/**
 * The retryable() verdict for an arbitrary in-flight exception: typed
 * wire errors answer for themselves, anything else is not retryable
 * (an IRONMAN_CHECK or a std::bad_alloc must never be papered over by
 * a reconnect loop).
 */
inline bool
isRetryable(const std::exception &e)
{
    const auto *we = dynamic_cast<const WireError *>(&e);
    return we != nullptr && we->retryable();
}

} // namespace ironman::net

#endif // IRONMAN_NET_WIRE_ERROR_H
