/**
 * @file
 * Two-party transport.
 *
 * Protocols in this library are written against the Channel interface;
 * tests and benches connect the two parties with an in-memory duplex
 * (two byte queues + condition variables) and run them on two threads.
 * The duplex counts bytes and message "turns" (direction changes), from
 * which the analytic NetworkModel derives wire time for a configured
 * bandwidth/RTT pair — this is how the WAN/LAN rows of Fig. 7(c) and
 * Table 5 are produced without a real network.
 */

#ifndef IRONMAN_NET_CHANNEL_H
#define IRONMAN_NET_CHANNEL_H

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/bitvec.h"
#include "common/block.h"

namespace ironman::net {

/** Byte-oriented, blocking, ordered, reliable pipe endpoint. */
class Channel
{
  public:
    virtual ~Channel() = default;

    virtual void sendBytes(const void *data, size_t len) = 0;
    virtual void recvBytes(void *data, size_t len) = 0;

    /** Bytes this endpoint has sent. */
    virtual uint64_t bytesSent() const = 0;

    // -- typed helpers ----------------------------------------------------

    void sendBlock(const Block &b);
    Block recvBlock();

    void sendBlocks(const Block *blocks, size_t n);
    void recvBlocks(Block *blocks, size_t n);

    void sendUint64(uint64_t v);
    uint64_t recvUint64();

    /** Send a bit vector (length prefix + packed words). */
    void sendBits(const BitVec &bits);
    BitVec recvBits();

    /**
     * Receive a bit vector into existing storage (reused across
     * calls, so steady-state receives allocate nothing).
     */
    void recvBitsInto(BitVec &bits);
};

/**
 * An in-memory full-duplex link between two endpoints running on two
 * threads of one process.
 */
class MemoryDuplex
{
  public:
    MemoryDuplex();
    ~MemoryDuplex();

    MemoryDuplex(const MemoryDuplex &) = delete;
    MemoryDuplex &operator=(const MemoryDuplex &) = delete;

    /** Endpoint for party A (sender by convention, but symmetric). */
    Channel &a();
    /** Endpoint for party B. */
    Channel &b();

    /**
     * Fix each direction's byte FIFO at (the power-of-two round-up of)
     * @p bytes_per_direction. After this call the FIFO NEVER grows:
     * a sender that would overrun the capacity blocks until the peer
     * drains, so the reserved size is a true worst-case bound —
     * deterministic, independent of thread scheduling — and a warm
     * wire performs no allocation by construction (asserted by the
     * zero-alloc test). Without reserve() the FIFO keeps the legacy
     * grow-on-demand behavior (largest backlog observed).
     *
     * The bound must exceed zero; backpressure cannot deadlock as long
     * as the peer keeps receiving, which every protocol here does (a
     * blocked sender's peer is always inside or heading into a recv).
     */
    void reserve(size_t bytes_per_direction);

    /**
     * Current FIFO capacity of one direction (both directions are
     * sized together). Stable after reserve(); tests assert it does
     * not move across warm iterations.
     */
    size_t capacityPerDirection() const;

    /** Total bytes moved in both directions. */
    uint64_t totalBytes() const;

    /**
     * Number of direction changes observed on the wire; a classic
     * half-duplex protocol with r round trips shows ~2r turns.
     */
    uint64_t turns() const;

  private:
    struct Shared;
    struct Endpoint;
    std::shared_ptr<Shared> shared;
    std::unique_ptr<Endpoint> endA;
    std::unique_ptr<Endpoint> endB;
};

/** Analytic wire-time model: serialization + propagation delay. */
struct NetworkModel
{
    double bandwidthBitsPerSec;
    double rttSeconds;
    const char *name;

    /** Wire seconds for @p bytes moved over @p round_trips exchanges. */
    double
    seconds(uint64_t bytes, double round_trips) const
    {
        return double(bytes) * 8.0 / bandwidthBitsPerSec +
               round_trips * rttSeconds;
    }
};

/** The two network settings evaluated by the paper (Sec. 6.5). */
NetworkModel wanNetwork(); ///< 400 Mbps, 20 ms RTT
NetworkModel lanNetwork(); ///< 3 Gbps, 0.15 ms RTT

} // namespace ironman::net

#endif // IRONMAN_NET_CHANNEL_H
