#include "net/flight_recorder.h"

#include <cstdio>
#include <mutex>
#include <vector>

#include "common/metrics.h"

namespace ironman::net {

namespace {

std::mutex g_lastDumpMutex;
std::string g_lastDump;

/** Live recorders, for dump-on-demand. A recorder's destructor blocks
 * on this mutex, so a registered pointer stays valid for as long as
 * dumpAllFlightRecorders holds the lock. */
struct LiveList
{
    std::mutex m;
    std::vector<const FlightRecorder *> recorders;
};

LiveList &
liveList()
{
    static LiveList l;
    return l;
}

void
retainDump(std::string text)
{
    std::fputs(text.c_str(), stderr);
    {
        std::lock_guard<std::mutex> lock(g_lastDumpMutex);
        g_lastDump = std::move(text);
    }
    static metrics::Counter &dumps =
        metrics::counter("net_flight_dumps_total");
    dumps.inc();
}

} // namespace

FlightRecorder::FlightRecorder()
{
    LiveList &l = liveList();
    std::lock_guard<std::mutex> lock(l.m);
    l.recorders.push_back(this);
}

FlightRecorder::~FlightRecorder()
{
    LiveList &l = liveList();
    std::lock_guard<std::mutex> lock(l.m);
    for (auto it = l.recorders.begin(); it != l.recorders.end(); ++it)
        if (*it == this) {
            l.recorders.erase(it);
            break;
        }
}

void
FlightRecorder::note(const char *label, uint32_t tag, uint64_t bytes)
{
    Event &e = ring_[seq_.load(std::memory_order_relaxed) % kCapacity];
    // Label last, release: a concurrent renderer that acquires a
    // non-null label sees fields from this event or an older complete
    // one — never a label paired with uninitialized words.
    e.label.store(nullptr, std::memory_order_relaxed);
    e.t_us.store(metrics::nowUs(), std::memory_order_relaxed);
    e.bytes.store(bytes, std::memory_order_relaxed);
    e.tag.store(tag, std::memory_order_relaxed);
    e.label.store(label, std::memory_order_release);
    seq_.fetch_add(1, std::memory_order_relaxed);
}

std::string
FlightRecorder::render() const
{
    const uint64_t seq = seq_.load(std::memory_order_relaxed);
    const uint64_t kept = seq < kCapacity ? seq : kCapacity;
    std::string out;
    if (kept == 0)
        return out;
    // Timestamps are printed relative to the oldest retained event so
    // a dump reads as a timeline, not as raw clock values.
    const uint64_t t0 =
        ring_[(seq - kept) % kCapacity].t_us.load(std::memory_order_relaxed);
    char line[160];
    for (uint64_t i = seq - kept; i < seq; ++i) {
        const Event &e = ring_[i % kCapacity];
        const char *label = e.label.load(std::memory_order_acquire);
        if (!label)
            continue; // slot mid-write by the owning session thread
        std::snprintf(line, sizeof(line),
                      "  +%8lluus %-12s tag=%u bytes=%llu\n",
                      (unsigned long long)(e.t_us.load(
                                               std::memory_order_relaxed) -
                                           t0),
                      label, e.tag.load(std::memory_order_relaxed),
                      (unsigned long long)e.bytes.load(
                          std::memory_order_relaxed));
        out += line;
    }
    return out;
}

void
FlightRecorder::dump(uint64_t sid, const char *reason) const
{
    const uint64_t seq = seq_.load(std::memory_order_relaxed);
    const uint64_t kept = seq < kCapacity ? seq : kCapacity;
    char head[160];
    std::snprintf(head, sizeof(head),
                  "flight recorder: session %llu unwound (%s); last "
                  "%llu/%llu events:\n",
                  (unsigned long long)sid, reason,
                  (unsigned long long)kept, (unsigned long long)seq);
    std::string text = head;
    text += render();
    retainDump(std::move(text));
}

std::string
lastFlightDump()
{
    std::lock_guard<std::mutex> lock(g_lastDumpMutex);
    return g_lastDump;
}

std::string
dumpAllFlightRecorders(const char *reason)
{
    LiveList &l = liveList();
    std::string text;
    {
        std::lock_guard<std::mutex> lock(l.m);
        char head[160];
        std::snprintf(head, sizeof(head),
                      "flight recorder: on-demand dump (%s); %zu live "
                      "session ring(s):\n",
                      reason, l.recorders.size());
        text = head;
        for (const FlightRecorder *fr : l.recorders) {
            const uint64_t seq = fr->total();
            const uint64_t kept =
                seq < FlightRecorder::kCapacity ? seq
                                                : FlightRecorder::kCapacity;
            std::snprintf(head, sizeof(head),
                          " session %llu: last %llu/%llu events:\n",
                          (unsigned long long)fr->session(),
                          (unsigned long long)kept,
                          (unsigned long long)seq);
            text += head;
            text += fr->render();
        }
    }
    retainDump(text);
    return text;
}

} // namespace ironman::net
