#include "net/flight_recorder.h"

#include <cstdio>
#include <mutex>

#include "common/metrics.h"

namespace ironman::net {

namespace {

std::mutex g_lastDumpMutex;
std::string g_lastDump;

} // namespace

void
FlightRecorder::note(const char *label, uint32_t tag, uint64_t bytes)
{
    Event &e = ring_[seq_ % kCapacity];
    e.t_us = metrics::nowUs();
    e.label = label;
    e.bytes = bytes;
    e.tag = tag;
    ++seq_;
}

std::string
FlightRecorder::render() const
{
    const uint64_t kept = seq_ < kCapacity ? seq_ : kCapacity;
    std::string out;
    if (kept == 0)
        return out;
    // Timestamps are printed relative to the oldest retained event so
    // a dump reads as a timeline, not as raw clock values.
    const uint64_t t0 = ring_[(seq_ - kept) % kCapacity].t_us;
    char line[160];
    for (uint64_t i = seq_ - kept; i < seq_; ++i) {
        const Event &e = ring_[i % kCapacity];
        std::snprintf(line, sizeof(line),
                      "  +%8lluus %-12s tag=%u bytes=%llu\n",
                      (unsigned long long)(e.t_us - t0), e.label, e.tag,
                      (unsigned long long)e.bytes);
        out += line;
    }
    return out;
}

void
FlightRecorder::dump(uint64_t sid, const char *reason) const
{
    const uint64_t kept = seq_ < kCapacity ? seq_ : kCapacity;
    char head[160];
    std::snprintf(head, sizeof(head),
                  "flight recorder: session %llu unwound (%s); last "
                  "%llu/%llu events:\n",
                  (unsigned long long)sid, reason,
                  (unsigned long long)kept, (unsigned long long)seq_);
    std::string text = head;
    text += render();
    std::fputs(text.c_str(), stderr);
    {
        std::lock_guard<std::mutex> lock(g_lastDumpMutex);
        g_lastDump = std::move(text);
    }
    static metrics::Counter &dumps =
        metrics::counter("net_flight_dumps_total");
    dumps.inc();
}

std::string
lastFlightDump()
{
    std::lock_guard<std::mutex> lock(g_lastDumpMutex);
    return g_lastDump;
}

} // namespace ironman::net
