/**
 * @file
 * Helper that runs a two-party protocol on two threads over an
 * in-memory duplex and reports wire statistics.
 */

#ifndef IRONMAN_NET_TWO_PARTY_H
#define IRONMAN_NET_TWO_PARTY_H

#include <exception>
#include <functional>
#include <thread>

#include "net/channel.h"

namespace ironman::net {

/** Wire statistics of one protocol execution. */
struct WireStats
{
    uint64_t totalBytes = 0;
    uint64_t turns = 0;

    /** Approximate sequential round trips (two turns ~ one round). */
    double roundTrips() const { return turns / 2.0; }
};

/**
 * Run @p party_a and @p party_b concurrently, each with its endpoint of
 * a fresh duplex. Exceptions from either thread are rethrown on the
 * caller thread after both join.
 */
inline WireStats
runTwoParty(const std::function<void(Channel &)> &party_a,
            const std::function<void(Channel &)> &party_b)
{
    MemoryDuplex duplex;
    std::exception_ptr err_a, err_b;

    std::thread ta([&] {
        try {
            party_a(duplex.a());
        } catch (...) {
            err_a = std::current_exception();
        }
    });
    std::thread tb([&] {
        try {
            party_b(duplex.b());
        } catch (...) {
            err_b = std::current_exception();
        }
    });
    ta.join();
    tb.join();

    if (err_a)
        std::rethrow_exception(err_a);
    if (err_b)
        std::rethrow_exception(err_b);

    WireStats stats;
    stats.totalBytes = duplex.totalBytes();
    stats.turns = duplex.turns();
    return stats;
}

} // namespace ironman::net

#endif // IRONMAN_NET_TWO_PARTY_H
