/**
 * @file
 * The shared daemon skeleton of the socket services (svc::CotServer,
 * infer::InferServer): bind a listener (TCP or Unix-domain), run an
 * accept loop with session-slot backpressure, hand each accepted
 * connection to the owner's handler on its own thread, and tear
 * everything down deterministically.
 *
 * Concurrency contract (what both daemons relied on before this was
 * factored out, preserved verbatim):
 *
 *   - one accept loop plus ONE JOINED (never detached) thread per
 *     active session; finished threads are reaped on the accept path
 *     so a long-running daemon does not accumulate dead stacks;
 *   - at most maxSessions sessions run concurrently — beyond that the
 *     accept loop parks and new connections queue in the listen
 *     backlog (backpressure, not rejection);
 *   - stop() retires the listener first (atomically, so the accept
 *     thread either sees -1 or gets EBADF), shuts down every live
 *     session's socket (waking threads blocked in recv — they unwind
 *     through their exception path), then joins the accept loop and
 *     every session thread. Idempotent.
 *
 * Containment (the failure layer):
 *
 *   - setSessionRecvTimeout/setSessionSendTimeout apply poll-based
 *     deadlines to every accepted channel BEFORE the handler runs, so
 *     no server thread ever enters a blocking read without a bound —
 *     a stalled peer becomes a typed WireError{Deadline} and the
 *     session unwinds;
 *   - setIdleTimeout arms a reaper thread that watches each live
 *     channel's byte counters and force-closes sessions that have
 *     moved no bytes for the configured window (belt to the deadline's
 *     suspenders: it also catches handlers blocked outside the
 *     channel, e.g. in a stock wait);
 *   - drain(timeout) is the rolling-restart path: stop accepting
 *     immediately, let in-flight sessions FINISH (no socket shutdown),
 *     and only force-close whatever is still running when the deadline
 *     expires. Returns true iff every session completed voluntarily.
 *
 * The handler runs on the session thread and OWNS the protocol loop;
 * it must not outlive the channel reference it is given. Exceptions
 * it throws are the normal way a session ends on a dead peer — the
 * skeleton catches them after the handler's unwind.
 */

#ifndef IRONMAN_NET_SESSION_SERVER_H
#define IRONMAN_NET_SESSION_SERVER_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "net/socket_channel.h"

namespace ironman::net {

/**
 * Session telemetry for one daemon, registered under a name prefix
 * ("cot", "infer") so both daemons in one process stay separable.
 * Handles are registered once in init() (allocating, cold); every
 * note*() after that is lock- and allocation-free. Before init() all
 * note*() calls are no-ops, so a bare SessionServer (tests) pays one
 * null check per event.
 *
 * noteFailure() is public on purpose: the daemons catch their own
 * session exceptions (the skeleton's wrapper only sees what escapes),
 * so whichever layer handles the unwind classifies it — exactly one
 * layer sees each failure.
 */
class SessionMetrics
{
  public:
    /** Register handles: <p>_sessions_accepted_total, _active,
     * _reaped_total, <p>_session_duration_us, and one
     * <p>_sessions_failed_<kind>_total per WireFault kind. */
    void init(const std::string &prefix);

    void
    noteAccepted()
    {
        if (accepted_) {
            accepted_->inc();
            active_->add(1);
        }
    }

    void
    noteFinished(uint64_t duration_us)
    {
        if (accepted_) {
            active_->sub(1);
            duration_->record(duration_us);
        }
    }

    void
    noteReaped()
    {
        if (reaped_)
            reaped_->inc();
    }

    /** Count one session unwound by a fault of this kind. */
    void
    noteFailure(WireFault fault)
    {
        const size_t k = size_t(fault);
        if (accepted_ && k < kFaultKinds)
            failed_[k]->inc();
    }

    uint64_t
    failures(WireFault fault) const
    {
        const size_t k = size_t(fault);
        return accepted_ && k < kFaultKinds ? failed_[k]->value() : 0;
    }

  private:
    static constexpr size_t kFaultKinds = 5;
    metrics::Counter *accepted_ = nullptr;
    metrics::Gauge *active_ = nullptr;
    metrics::Counter *reaped_ = nullptr;
    metrics::Counter *failed_[kFaultKinds] = {};
    metrics::Histogram *duration_ = nullptr;
};

class SessionServer
{
  public:
    /**
     * Serve one session; sid is unique for the server's lifetime.
     * Runs on a dedicated thread; may throw (logged by the owner's
     * wrapper or swallowed here).
     */
    using Handler = std::function<void(SocketChannel &ch, uint64_t sid)>;

    explicit SessionServer(size_t max_sessions);
    ~SessionServer();

    SessionServer(const SessionServer &) = delete;
    SessionServer &operator=(const SessionServer &) = delete;

    /** Set before listening. */
    void setHandler(Handler h);

    /**
     * Register session telemetry under @p prefix (e.g. "cot",
     * "infer"). Call before listening; without it the server emits no
     * metrics (bare skeletons in tests stay silent).
     */
    void setMetricsPrefix(const std::string &prefix)
    {
        metrics_.init(prefix);
    }

    /** Telemetry handle — daemons classify session failures here. */
    SessionMetrics &metrics() { return metrics_; }

    /**
     * Per-session channel deadlines, applied to every accepted
     * connection before its handler runs (0 = unbounded, the
     * pre-failure-layer behavior). Set before listening.
     */
    void setSessionRecvTimeout(uint64_t ms) { recvTimeoutMs = ms; }
    void setSessionSendTimeout(uint64_t ms) { sendTimeoutMs = ms; }

    /**
     * Arm the idle reaper: a session whose channel moves no bytes in
     * either direction for @p ms is force-closed (its thread unwinds
     * through WireError{PeerClosed}). 0 disables. Set before
     * listening.
     */
    void setIdleTimeout(uint64_t ms) { idleTimeoutMs = ms; }

    /**
     * Bind 127.0.0.1:@p port (0 = ephemeral), start the accept loop,
     * return the bound port.
     */
    uint16_t listenTcp(uint16_t port);

    /** Bind a Unix-domain path and start the accept loop. */
    void listenUnix(const std::string &path);

    /** True between a listen*() call and stop(). */
    bool listening() const { return listenFd.load() >= 0; }

    /**
     * Stop accepting, shut down active sessions' sockets, wait for
     * them to unwind, and join everything. Idempotent.
     */
    void stop();

    /**
     * Rolling-restart mode: retire the listener NOW (new connects are
     * refused), let in-flight sessions run to their own Close for up
     * to @p timeout_ms, then force-close stragglers and join
     * everything. Returns true iff all sessions finished voluntarily
     * (zero interrupted requests). The server is fully stopped either
     * way.
     */
    bool drain(uint64_t timeout_ms);

    /** Sessions the reaper force-closed for idleness. */
    uint64_t sessionsReaped() const { return reaped.load(); }

    size_t activeSessions() const;

  private:
    void startAccepting();
    void acceptLoop();
    void reaperLoop();
    void reapFinishedLocked();
    void retireListener();
    void finishSessions(bool force);

    Handler handler;
    SessionMetrics metrics_;
    size_t maxSessions;
    uint64_t recvTimeoutMs = 0;
    uint64_t sendTimeoutMs = 0;
    uint64_t idleTimeoutMs = 0;

    std::atomic<int> listenFd{-1}; ///< stop() retires it from another thread
    std::thread acceptThread;
    std::thread reaperThread;
    std::atomic<bool> stopping{false};
    std::atomic<uint64_t> reaped{0};

    /** One accepted session: its serving thread + completion flag. */
    struct Session
    {
        std::thread thread;
        std::shared_ptr<std::atomic<bool>> finished;
    };

    /** Reaper bookkeeping: last observed progress per live channel. */
    struct Activity
    {
        uint64_t bytes = 0;
        std::chrono::steady_clock::time_point lastChange;
    };

    mutable std::mutex m;
    std::condition_variable cv; ///< session-slot and drain waits
    size_t active = 0;
    std::map<uint64_t, SocketChannel *> liveChannels;
    std::map<uint64_t, Activity> activity; ///< reaper-only, under m
    std::vector<Session> sessions; ///< joined on reap/stop, never detached
    uint64_t nextSession = 1;
};

} // namespace ironman::net

#endif // IRONMAN_NET_SESSION_SERVER_H
