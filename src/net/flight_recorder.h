/**
 * @file
 * Per-session flight recorder: a fixed-size ring of trace events the
 * session loop stamps as it processes opcodes, cheap enough to stay on
 * by default (no allocation, no locks, no syscalls at record time).
 *
 * When a session unwinds through a WireError the daemon dumps the
 * ring — the session's last opcodes, tags, byte counts, and relative
 * timestamps — to stderr, turning an injected chaos fault or a field
 * failure into a postmortem artifact instead of a bare typed
 * exception. The most recent dump is also retained process-wide
 * (lastFlightDump()) so tests and tooling can assert on it without
 * scraping stderr.
 *
 * Dump-on-demand: every live recorder registers itself in a
 * process-wide list at construction, so dumpAllFlightRecorders() —
 * wired to SIGUSR1 on both daemons and to the /flight endpoint route —
 * can render EVERY in-flight session's ring while the sessions keep
 * running. That makes the event words cross-thread: each field is an
 * atomic, with the label stored last (release) and read first
 * (acquire) so a concurrent reader sees either a complete event or an
 * older complete one, never a torn mix with a garbage pointer.
 *
 * note() remains single-writer: exactly one thread runs a session
 * loop. Labels must be string literals (the ring stores the pointer,
 * not a copy).
 */

#ifndef IRONMAN_NET_FLIGHT_RECORDER_H
#define IRONMAN_NET_FLIGHT_RECORDER_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace ironman::net {

class FlightRecorder
{
  public:
    /** Events retained; older ones are overwritten (64 * 40 B/session,
     * sized to hold several full pipelined windows of opcodes). */
    static constexpr size_t kCapacity = 64;

    struct Event
    {
        std::atomic<uint64_t> t_us{0}; ///< metrics::nowUs() at record
        std::atomic<const char *> label{nullptr}; ///< static string
        std::atomic<uint64_t> bytes{0}; ///< payload size, 0 when n/a
        std::atomic<uint32_t> tag{0};   ///< request tag, 0 when n/a
    };

    /** Registers in the live-recorder list (mutex; cold path). */
    FlightRecorder();
    ~FlightRecorder();

    FlightRecorder(const FlightRecorder &) = delete;
    FlightRecorder &operator=(const FlightRecorder &) = delete;

    /** Record one event. Allocation-free; @p label MUST be a literal. */
    void
    note(const char *label, uint32_t tag = 0, uint64_t bytes = 0);

    /** Forget everything (e.g. at session handshake completion). */
    void clear() { seq_.store(0, std::memory_order_relaxed); }

    /** Events recorded since construction/clear (not capped). */
    uint64_t total() const { return seq_.load(std::memory_order_relaxed); }

    /** Session id stamped on all-ring dumps (0 until the handshake
     * assigns one). */
    void setSession(uint64_t sid) { sid_.store(sid, std::memory_order_relaxed); }
    uint64_t session() const { return sid_.load(std::memory_order_relaxed); }

    /** Render retained events oldest-first (cold path; allocates).
     * Safe to call from any thread while the owner records. */
    std::string render() const;

    /**
     * Postmortem dump: writes a header naming @p sid and @p reason
     * plus the rendered ring to stderr, stores the same text as the
     * process-wide last dump, and bumps net_flight_dumps_total.
     */
    void dump(uint64_t sid, const char *reason) const;

  private:
    Event ring_[kCapacity];
    std::atomic<uint64_t> seq_{0};
    std::atomic<uint64_t> sid_{0};
};

/** Text of the most recent FlightRecorder::dump() ("" if none yet). */
std::string lastFlightDump();

/**
 * Render every live session's ring under one header (the SIGUSR1 /
 * endpoint "what is the daemon doing right now" snapshot), write it
 * to stderr, retain it as the last dump, and return it. Sessions keep
 * recording while this reads; events overwritten mid-render surface
 * as older-but-complete entries, never torn ones.
 */
std::string dumpAllFlightRecorders(const char *reason);

} // namespace ironman::net

#endif // IRONMAN_NET_FLIGHT_RECORDER_H
