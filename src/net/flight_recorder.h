/**
 * @file
 * Per-session flight recorder: a fixed-size ring of trace events the
 * session loop stamps as it processes opcodes, cheap enough to stay on
 * by default (no allocation, no locks, no syscalls at record time).
 *
 * When a session unwinds through a WireError the daemon dumps the
 * ring — the session's last opcodes, tags, byte counts, and relative
 * timestamps — to stderr, turning an injected chaos fault or a field
 * failure into a postmortem artifact instead of a bare typed
 * exception. The most recent dump is also retained process-wide
 * (lastFlightDump()) so tests and tooling can assert on it without
 * scraping stderr.
 *
 * The recorder is strictly session-thread-local: note() is not
 * thread-safe and never needs to be, because exactly one thread runs a
 * session loop. Labels must be string literals (the ring stores the
 * pointer, not a copy).
 */

#ifndef IRONMAN_NET_FLIGHT_RECORDER_H
#define IRONMAN_NET_FLIGHT_RECORDER_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace ironman::net {

class FlightRecorder
{
  public:
    /** Events retained; older ones are overwritten (64 * 32 B/session,
     * sized to hold several full pipelined windows of opcodes). */
    static constexpr size_t kCapacity = 64;

    struct Event
    {
        uint64_t t_us;       ///< metrics::nowUs() at record time
        const char *label;   ///< static string (opcode/phase name)
        uint64_t bytes;      ///< payload size, 0 when n/a
        uint32_t tag;        ///< request tag, 0 when n/a
    };

    /** Record one event. Allocation-free; @p label MUST be a literal. */
    void
    note(const char *label, uint32_t tag = 0, uint64_t bytes = 0);

    /** Forget everything (e.g. at session handshake completion). */
    void clear() { seq_ = 0; }

    /** Events recorded since construction/clear (not capped). */
    uint64_t total() const { return seq_; }

    /** Render retained events oldest-first (cold path; allocates). */
    std::string render() const;

    /**
     * Postmortem dump: writes a header naming @p sid and @p reason
     * plus the rendered ring to stderr, stores the same text as the
     * process-wide last dump, and bumps net_flight_dumps_total.
     */
    void dump(uint64_t sid, const char *reason) const;

  private:
    Event ring_[kCapacity];
    uint64_t seq_ = 0;
};

/** Text of the most recent FlightRecorder::dump() ("" if none yet). */
std::string lastFlightDump();

} // namespace ironman::net

#endif // IRONMAN_NET_FLIGHT_RECORDER_H
