/**
 * @file
 * Deterministic fault injection for the socket transport.
 *
 * A FaultPlan arms ONE fault on a SocketChannel, triggered when the
 * channel's cumulative payload-bytes-sent or direction-turn counter
 * crosses a scheduled offset. Because both counters are deterministic
 * functions of the protocol (not of timing), a seeded plan reproduces
 * the same failure at the same protocol point on every run — which is
 * what lets the chaos tests assert exact recovery behavior instead of
 * "usually survives".
 *
 * Fault kinds (what the INSTRUMENTED endpoint does at the trigger):
 *
 *   Close         — shut the socket down both ways and throw
 *                   (PeerClosed). The peer sees a clean EOF: the
 *                   "client died" / "server killed" case.
 *   TruncateFrame — emit a frame header promising N payload bytes,
 *                   deliver only half, then shut down (PeerClosed
 *                   locally). The peer dies inside a frame: the
 *                   "connection cut mid-record" case.
 *   Stall         — emit a partial frame and then go silent WITHOUT
 *                   closing (throws Transient locally; the fd stays
 *                   open while the owner keeps the channel alive).
 *                   The peer blocks until its own recv deadline: the
 *                   case only deadlines can contain.
 *   Corrupt       — XOR one payload byte in the next outgoing frame
 *                   and continue normally. No local error: the damage
 *                   is the peer's problem to detect (or survive).
 *   Delay         — sleep delayUs once at the trigger, then continue.
 *                   A latency spike, not an error.
 *
 * Each plan fires at most once (one-shot). Byte offsets trigger on
 * the SEND path (at flush time, where frames are cut); turn offsets
 * trigger at the send->recv turnaround. Offsets beyond the run never
 * fire — a grid sweep can arm blindly.
 */

#ifndef IRONMAN_NET_FAULT_H
#define IRONMAN_NET_FAULT_H

#include <cstdint>

namespace ironman::net {

struct FaultPlan
{
    enum class Kind : uint8_t
    {
        None = 0,
        Close,
        TruncateFrame,
        Stall,
        Corrupt,
        Delay,
    };

    Kind kind = Kind::None;

    /** Fire when cumulative payload bytes sent reach this (send path). */
    uint64_t atSentByte = UINT64_MAX;

    /** Fire at this direction-turn count (send->recv turnaround). */
    uint64_t atTurn = UINT64_MAX;

    /** Kind::Delay: spike length. */
    uint64_t delayUs = 0;

    bool armed() const { return kind != Kind::None; }

    /** A plan firing once cumulative sent payload reaches @p at_byte. */
    static FaultPlan
    atByte(Kind k, uint64_t at_byte, uint64_t delay_us = 0)
    {
        FaultPlan p;
        p.kind = k;
        p.atSentByte = at_byte;
        p.delayUs = delay_us;
        return p;
    }

    /** A plan firing at the @p at_turn'th direction turnaround. */
    static FaultPlan
    atTurnCount(Kind k, uint64_t at_turn, uint64_t delay_us = 0)
    {
        FaultPlan p;
        p.kind = k;
        p.atTurn = at_turn;
        p.delayUs = delay_us;
        return p;
    }

    /**
     * Seeded plan: the byte offset is drawn deterministically from
     * @p seed in [1, max_byte] (splitmix64), so a grid over seeds
     * scatters the same kinds across different protocol points while
     * every individual run stays reproducible.
     */
    static FaultPlan
    seeded(Kind k, uint64_t seed, uint64_t max_byte,
           uint64_t delay_us = 0)
    {
        uint64_t z = seed + 0x9e3779b97f4a7c15ULL;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        z ^= z >> 31;
        return atByte(k, max_byte ? 1 + z % max_byte : 1, delay_us);
    }

    const char *
    kindName() const
    {
        switch (kind) {
          case Kind::None: return "none";
          case Kind::Close: return "close";
          case Kind::TruncateFrame: return "truncate";
          case Kind::Stall: return "stall";
          case Kind::Corrupt: return "corrupt";
          case Kind::Delay: return "delay";
        }
        return "?";
    }
};

} // namespace ironman::net

#endif // IRONMAN_NET_FAULT_H
