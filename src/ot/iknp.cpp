#include "ot/iknp.h"

#include "common/logging.h"
#include "crypto/aes.h"
#include "ot/bit_transpose.h"

namespace ironman::ot {

namespace {

/**
 * Column PRG: n bits from a seed, offset by session so every
 * extension consumes a fresh slice of the keystream.
 */
BitVec
expandColumn(const Block &seed, size_t n, uint64_t session)
{
    crypto::Aes128 aes(seed);
    BitVec out(n);
    auto &words = out.rawWords();
    const uint64_t base = session * ((n + 127) / 128 + 1);

    std::vector<Block> ctr(words.size() / 2 + 1);
    for (size_t i = 0; i < ctr.size(); ++i)
        ctr[i] = Block::fromUint64(base + i);
    std::vector<Block> ks(ctr.size());
    aes.encryptBatch(ctr.data(), ks.data(), ctr.size());

    for (size_t w = 0; w < words.size(); ++w) {
        const Block &b = ks[w / 2];
        words[w] = (w % 2 == 0) ? b.lo : b.hi;
    }
    if (n % 64)
        words.back() &= (uint64_t(1) << (n % 64)) - 1;
    return out;
}

} // namespace

IknpSetup
dealIknpSetup(Rng &rng)
{
    IknpSetup setup;
    setup.delta = rng.nextBlock();
    for (int j = 0; j < 128; ++j) {
        setup.receiverSeeds[j][0] = rng.nextBlock();
        setup.receiverSeeds[j][1] = rng.nextBlock();
        setup.senderSeeds[j] =
            setup.receiverSeeds[j][setup.delta.getBit(j)];
    }
    return setup;
}

std::vector<Block>
iknpExtendSender(net::Channel &ch, const IknpSetup &setup, size_t n,
                 uint64_t session)
{
    IRONMAN_CHECK(n % 64 == 0);

    // Receive the derandomization columns d_j = c_j^0 ^ c_j^1 ^ x,
    // then q_j = c_j^{s_j} ^ s_j * d_j = c_j^0 ^ s_j * x.
    std::vector<BitVec> q(128);
    for (int j = 0; j < 128; ++j) {
        BitVec d = ch.recvBits();
        IRONMAN_CHECK(d.size() == n);
        BitVec col = expandColumn(setup.senderSeeds[j], n, session);
        if (setup.delta.getBit(j))
            col ^= d;
        q[j] = std::move(col);
    }

    return transposeColumnsToBlocks(q, n);
}

std::vector<Block>
iknpExtendReceiver(net::Channel &ch, const IknpSetup &setup,
                   const BitVec &choices, uint64_t session)
{
    const size_t n = choices.size();
    IRONMAN_CHECK(n % 64 == 0);

    std::vector<BitVec> t(128);
    for (int j = 0; j < 128; ++j) {
        BitVec c0 = expandColumn(setup.receiverSeeds[j][0], n, session);
        BitVec c1 = expandColumn(setup.receiverSeeds[j][1], n, session);
        BitVec d = c0;
        d ^= c1;
        d ^= choices;
        ch.sendBits(d);
        t[j] = std::move(c0);
    }

    return transposeColumnsToBlocks(t, n);
}

} // namespace ironman::ot
