#include "ot/iknp.h"

#include "common/logging.h"
#include "ot/bit_transpose.h"

namespace ironman::ot {

namespace {

/**
 * Column PRG: n bits from a pre-scheduled cipher, offset by session so
 * every extension consumes a fresh slice of the keystream. Writes into
 * grow-once buffers — no allocation once warm.
 */
void
expandColumnInto(const crypto::Aes128 &aes, size_t n, uint64_t session,
                 BitVec &out, IknpWorkspace::Worker &wk)
{
    out.resize(n);
    auto &words = out.rawWords();
    const uint64_t base = session * ((n + 127) / 128 + 1);

    const size_t blocks = words.size() / 2 + 1;
    if (wk.ctr.size() < blocks) {
        wk.ctr.resize(blocks);
        wk.ks.resize(blocks);
    }
    for (size_t i = 0; i < blocks; ++i)
        wk.ctr[i] = Block::fromUint64(base + i);
    aes.encryptBatch(wk.ctr.data(), wk.ks.data(), blocks);

    for (size_t w = 0; w < words.size(); ++w) {
        const Block &b = wk.ks[w / 2];
        words[w] = (w % 2 == 0) ? b.lo : b.hi;
    }
    if (n % 64)
        words.back() &= (uint64_t(1) << (n % 64)) - 1;
}

} // namespace

IknpSetup
dealIknpSetup(Rng &rng)
{
    IknpSetup setup;
    setup.delta = rng.nextBlock();
    for (int j = 0; j < 128; ++j) {
        setup.receiverSeeds[j][0] = rng.nextBlock();
        setup.receiverSeeds[j][1] = rng.nextBlock();
        setup.senderSeeds[j] =
            setup.receiverSeeds[j][setup.delta.getBit(j)];
    }
    return setup;
}

void
IknpWorkspace::prepare(const IknpSetup &setup, size_t n, int threads,
                       bool for_sender)
{
    threads = std::max(threads, 1);
    // Bind by CONTENT, not address: a fresh setup can reuse a dead
    // setup's storage, and stale key schedules would silently break
    // the correlation.
    const bool same_setup =
        bound && boundTo.delta == setup.delta &&
        boundTo.senderSeeds == setup.senderSeeds &&
        boundTo.receiverSeeds == setup.receiverSeeds;
    if (same_setup && boundSender == for_sender &&
        preparedThreads >= threads) {
        // Column BitVecs grow inside expandColumnInto if n grew.
        return;
    }

    // Key schedules are fixed per setup: expand them once instead of
    // per column per extension.
    ciphers.clear();
    ciphers.reserve(for_sender ? 128 : 256);
    for (int j = 0; j < 128; ++j) {
        if (for_sender) {
            ciphers.emplace_back(setup.senderSeeds[j]);
        } else {
            ciphers.emplace_back(setup.receiverSeeds[j][0]);
            ciphers.emplace_back(setup.receiverSeeds[j][1]);
        }
    }

    cols.resize(128);
    diffs.resize(128);
    workers.resize(threads);

    boundTo = setup;
    bound = true;
    boundSender = for_sender;
    preparedThreads = threads;
}

void
iknpExtendSenderInto(net::Channel &ch, const IknpSetup &setup, size_t n,
                     uint64_t session, common::ThreadPool &pool,
                     IknpWorkspace &ws, Block *rows)
{
    IRONMAN_CHECK(n % 64 == 0);
    ws.prepare(setup, n, pool.threads(), /*for_sender=*/true);

    // All 128 derandomization columns arrive first (the wire is
    // sequential), then the column PRG + correction fans out:
    // q_j = c_j^{s_j} ^ s_j * d_j = c_j^0 ^ s_j * x.
    for (int j = 0; j < 128; ++j) {
        ch.recvBitsInto(ws.diffs[j]);
        IRONMAN_CHECK(ws.diffs[j].size() == n);
    }

    pool.parallelFor(128, [&](int worker, size_t lo, size_t hi) {
        for (size_t j = lo; j < hi; ++j) {
            expandColumnInto(ws.ciphers[j], n, session, ws.cols[j],
                             ws.workers[worker]);
            if (setup.delta.getBit(unsigned(j)))
                ws.cols[j] ^= ws.diffs[j];
        }
    });

    transposeColumnsToBlocks(ws.cols, n, rows);
}

void
iknpExtendReceiverInto(net::Channel &ch, const IknpSetup &setup,
                       const BitVec &choices, uint64_t session,
                       common::ThreadPool &pool, IknpWorkspace &ws,
                       Block *rows)
{
    const size_t n = choices.size();
    IRONMAN_CHECK(n % 64 == 0);
    ws.prepare(setup, n, pool.threads(), /*for_sender=*/false);

    // Expand both columns of every pair and form d_j = c^0 ^ c^1 ^ x
    // in parallel, then flush all 128 columns in wire order.
    pool.parallelFor(128, [&](int worker, size_t lo, size_t hi) {
        for (size_t j = lo; j < hi; ++j) {
            expandColumnInto(ws.ciphers[2 * j], n, session, ws.cols[j],
                             ws.workers[worker]);
            expandColumnInto(ws.ciphers[2 * j + 1], n, session,
                             ws.diffs[j], ws.workers[worker]);
            ws.diffs[j] ^= ws.cols[j];
            ws.diffs[j] ^= choices;
        }
    });
    for (int j = 0; j < 128; ++j)
        ch.sendBits(ws.diffs[j]);

    transposeColumnsToBlocks(ws.cols, n, rows);
}

} // namespace ironman::ot
