#include "ot/security.h"

#include <algorithm>
#include <cmath>

namespace ironman::ot {

namespace {

/// Matrix-multiplication exponent used for linear-algebra cost.
constexpr double kOmega = 2.8;

/** log2(n choose k) via lgamma. */
double
log2Choose(double n, double k)
{
    if (k < 0 || k > n)
        return -1e9;
    return (std::lgamma(n + 1) - std::lgamma(k + 1) -
            std::lgamma(n - k + 1)) / std::log(2.0);
}

} // namespace

double
LpnSecurityEstimate::bits() const
{
    return std::min({gaussBits, isdBits, exhaustiveBits});
}

LpnSecurityEstimate
estimateLpnSecurity(size_t n_in, size_t k_in, size_t t_in)
{
    const double n = double(n_in);
    const double k = double(k_in);
    const double t = double(t_in);

    LpnSecurityEstimate e{};

    // Pooled Gauss: a draw of k coordinates is noiseless with
    // probability ((n-t)/n)^k; each trial costs one k x k solve.
    const double log2_p_noiseless = k * std::log2((n - t) / n);
    e.gaussBits = kOmega * std::log2(k) - log2_p_noiseless;

    // Prange ISD: a random size-(n-k) information set contains all t
    // noise positions with probability C(n-k, t)/C(n, t); each trial
    // costs one (n-k)-sized solve.
    e.isdBits = kOmega * std::log2(n - k) +
                (log2Choose(n, t) - log2Choose(n - k, t));

    // Exhaustive search over noise supports (regular noise: one
    // position per bucket of n/t).
    e.exhaustiveBits = t * std::log2(n / t) + kOmega * std::log2(k);

    return e;
}

} // namespace ironman::ot
