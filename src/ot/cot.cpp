#include "ot/cot.h"

#include "common/logging.h"

namespace ironman::ot {

bool
verifyCotCorrelation(const CotSenderBatch &s, const CotReceiverBatch &r)
{
    if (s.size() != r.size() || r.choice.size() != r.size())
        return false;
    for (size_t i = 0; i < s.size(); ++i) {
        Block expect = s.q[i] ^ scalarMul(r.choice.get(i), s.delta);
        if (expect != r.t[i])
            return false;
    }
    return true;
}

size_t
CotCursor::take(size_t n)
{
    IRONMAN_CHECK(next + n <= limit,
                  "COT pool exhausted");
    size_t first = next;
    next += n;
    return first;
}

} // namespace ironman::ot
