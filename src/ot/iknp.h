/**
 * @file
 * IKNP-style COT extension (Ishai-Kilian-Nissim-Petrank, CRYPTO'03) —
 * the *linear-communication* OTE family the paper contrasts PCG-style
 * OTE against (Sec. 2.3: PCG trades IKNP's n*lambda bits of wire for
 * ~4.3x more computation).
 *
 * Semi-honest protocol: lambda = 128 base OTs seed column PRGs; each
 * extension moves one n-bit derandomization column per base OT
 * (16 bytes per COT), then a 128 x n bit transpose turns columns into
 * row correlations q_i = t_i ^ x_i * Delta.
 *
 * Ported onto the workspace idiom of the FERRET engine: grow-once
 * column buffers and pre-expanded AES key schedules live in an
 * IknpWorkspace, the column PRG fans out over a ThreadPool
 * (encodeBlocksPool-style contiguous ranges, bit-identical to
 * serial), and the row outputs land in a caller span — zero heap
 * allocation once warm, so bench/iknp_vs_pcg measures the protocol
 * rather than the allocator.
 *
 * Included so the repository can regenerate the paper's motivating
 * comparison (bench/iknp_vs_pcg); Ferret remains the production path.
 */

#ifndef IRONMAN_OT_IKNP_H
#define IRONMAN_OT_IKNP_H

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/bitvec.h"
#include "common/block.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "crypto/aes.h"
#include "net/channel.h"

namespace ironman::ot {

/** Output of the lambda base OTs (dealt, like the Ferret base COTs). */
struct IknpSetup
{
    /// Extension sender's secret: Delta bit j selects seed j.
    Block delta;
    /// Sender view: the seed matching each Delta bit.
    std::array<Block, 128> senderSeeds;
    /// Receiver view: both seeds of every pair.
    std::array<std::array<Block, 2>, 128> receiverSeeds;
};

/** Deal the one-time base-OT setup. */
IknpSetup dealIknpSetup(Rng &rng);

/**
 * Reusable state of one IKNP endpoint: 128 grow-once column bit
 * vectors, the received/sent derandomization columns, pre-expanded
 * per-seed AES schedules, and per-worker counter staging. prepare()
 * is idempotent per (setup, n, threads, role).
 */
struct IknpWorkspace
{
    /** Per-worker PRG staging (counter and keystream blocks). */
    struct Worker
    {
        std::vector<Block> ctr;
        std::vector<Block> ks;
    };

    void prepare(const IknpSetup &setup, size_t n, int threads,
                 bool for_sender);

    std::vector<BitVec> cols;  ///< q_j (sender) / t_j = c0_j (receiver)
    std::vector<BitVec> diffs; ///< derandomization columns d_j
    std::vector<crypto::Aes128> ciphers; ///< 128 (sender) or 256 (recv)
    std::vector<Worker> workers;

  private:
    IknpSetup boundTo;   ///< compared by content, not address
    bool bound = false;
    bool boundSender = false;
    int preparedThreads = 0;
};

/**
 * Sender side of one extension producing @p n COTs (n a multiple of
 * 64) into @p rows; the correlation pair is (rows[i], rows[i] ^
 * delta). Zero heap allocation once @p ws is warm.
 * @param session Must be fresh per extension (PRG column offset).
 */
void iknpExtendSenderInto(net::Channel &ch, const IknpSetup &setup,
                          size_t n, uint64_t session,
                          common::ThreadPool &pool, IknpWorkspace &ws,
                          Block *rows);

/**
 * Receiver side: chooses its own @p choices (size n, multiple of 64);
 * writes t_i = q_i ^ choices_i * delta into @p rows.
 */
void iknpExtendReceiverInto(net::Channel &ch, const IknpSetup &setup,
                            const BitVec &choices, uint64_t session,
                            common::ThreadPool &pool, IknpWorkspace &ws,
                            Block *rows);

} // namespace ironman::ot

#endif // IRONMAN_OT_IKNP_H
