/**
 * @file
 * IKNP-style COT extension (Ishai-Kilian-Nissim-Petrank, CRYPTO'03) —
 * the *linear-communication* OTE family the paper contrasts PCG-style
 * OTE against (Sec. 2.3: PCG trades IKNP's n*lambda bits of wire for
 * ~4.3x more computation).
 *
 * Semi-honest protocol: lambda = 128 base OTs seed column PRGs; each
 * extension moves one n-bit derandomization column per base OT
 * (16 bytes per COT), then a 128 x n bit transpose turns columns into
 * row correlations q_i = t_i ^ x_i * Delta.
 *
 * Included so the repository can regenerate the paper's motivating
 * comparison (bench/iknp_vs_pcg); Ferret remains the production path.
 */

#ifndef IRONMAN_OT_IKNP_H
#define IRONMAN_OT_IKNP_H

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/bitvec.h"
#include "common/block.h"
#include "common/rng.h"
#include "net/channel.h"

namespace ironman::ot {

/** Output of the lambda base OTs (dealt, like the Ferret base COTs). */
struct IknpSetup
{
    /// Extension sender's secret: Delta bit j selects seed j.
    Block delta;
    /// Sender view: the seed matching each Delta bit.
    std::array<Block, 128> senderSeeds;
    /// Receiver view: both seeds of every pair.
    std::array<std::array<Block, 2>, 128> receiverSeeds;
};

/** Deal the one-time base-OT setup. */
IknpSetup dealIknpSetup(Rng &rng);

/**
 * Sender side of one extension producing @p n COTs (n multiple of 64).
 * @param session Must be fresh per extension (PRG column offset).
 * @return q_i; the correlation pair is (q_i, q_i ^ delta).
 */
std::vector<Block> iknpExtendSender(net::Channel &ch,
                                    const IknpSetup &setup, size_t n,
                                    uint64_t session);

/**
 * Receiver side: chooses its own @p choices (size n).
 * @return t_i = q_i ^ choices_i * delta.
 */
std::vector<Block> iknpExtendReceiver(net::Channel &ch,
                                      const IknpSetup &setup,
                                      const BitVec &choices,
                                      uint64_t session);

} // namespace ironman::ot

#endif // IRONMAN_OT_IKNP_H
