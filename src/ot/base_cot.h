/**
 * @file
 * Base-COT generation (the one-time initialization of PCG-style OTE).
 *
 * The paper excludes initialization from every measurement ("Except for
 * the initialization phase that runs only once", Sec. 2.3) and treats
 * base COTs as a consumable resource, normally produced from a handful
 * of public-key base OTs plus IKNP-style extension. This repository
 * substitutes a trusted dealer: a local function that samples a
 * perfectly correlated batch for both parties. The substitution keeps
 * every downstream byte and cycle identical (see DESIGN.md).
 */

#ifndef IRONMAN_OT_BASE_COT_H
#define IRONMAN_OT_BASE_COT_H

#include <utility>

#include "common/rng.h"
#include "ot/cot.h"

namespace ironman::ot {

/**
 * Deal @p n COT correlations with offset @p delta.
 *
 * @param rng Randomness tape (deterministic for reproducible runs).
 * @param delta Global correlation offset (sender's secret).
 * @param n Number of correlations.
 */
std::pair<CotSenderBatch, CotReceiverBatch>
dealBaseCots(Rng &rng, const Block &delta, size_t n);

} // namespace ironman::ot

#endif // IRONMAN_OT_BASE_COT_H
