#include "ot/chosen_ot.h"

#include <cstring>

#include "common/logging.h"
#include "net/codec.h"

namespace ironman::ot {

namespace {

inline uint64_t
maskWidth(uint64_t v, unsigned width)
{
    return width == 64 ? v : (v & ((uint64_t(1) << width) - 1));
}

} // namespace

void
chosenOtSend(net::Channel &ch, const crypto::Crhf &crhf, const Block *m0,
             const Block *m1, size_t n, const Block &delta, const Block *q,
             uint64_t tweak_base, ChosenOtScratch &scratch)
{
    ch.recvBitsInto(scratch.d);
    IRONMAN_CHECK(scratch.d.size() == n);

    if (scratch.cipher.size() < 2 * n)
        scratch.cipher.resize(2 * n);
    if (scratch.pad0.size() < n)
        scratch.pad0.resize(n);
    if (scratch.pad1.size() < n)
        scratch.pad1.resize(n);

    // Stage the 2n hash inputs, run two fused batch hashes (both pads
    // of instance i share tweak_base + i), then mask.
    Block *pad0 = scratch.pad0.data();
    Block *pad1 = scratch.pad1.data();
    for (size_t i = 0; i < n; ++i) {
        bool di = scratch.d.get(i);
        pad0[i] = q[i] ^ scalarMul(di, delta);
        pad1[i] = q[i] ^ scalarMul(!di, delta);
    }
    crhf.hashBatch(pad0, pad0, n, tweak_base);
    crhf.hashBatch(pad1, pad1, n, tweak_base);

    Block *cipher = scratch.cipher.data();
    for (size_t i = 0; i < n; ++i) {
        cipher[2 * i] = m0[i] ^ pad0[i];
        cipher[2 * i + 1] = m1[i] ^ pad1[i];
    }
    ch.sendBlocks(cipher, 2 * n);
}

void
chosenOtRecvSendDerand(net::Channel &ch, const BitVec &choices,
                       const BitVec &b, size_t b_offset, size_t n,
                       ChosenOtScratch &scratch)
{
    IRONMAN_CHECK(choices.size() == n);

    BitVec &d = scratch.d;
    d.resize(n);
    for (size_t i = 0; i < n; ++i)
        d.set(i, choices.get(i) ^ b.get(b_offset + i));
    ch.sendBits(d);
}

void
chosenOtRecvCiphertexts(net::Channel &ch, size_t n,
                        ChosenOtScratch &scratch)
{
    if (scratch.cipher.size() < 2 * n)
        scratch.cipher.resize(2 * n);
    ch.recvBlocks(scratch.cipher.data(), 2 * n);
}

void
chosenOtRecvWire(net::Channel &ch, const BitVec &choices, const BitVec &b,
                 size_t b_offset, size_t n, ChosenOtScratch &scratch)
{
    chosenOtRecvSendDerand(ch, choices, b, b_offset, n, scratch);
    chosenOtRecvCiphertexts(ch, n, scratch);
}

void
chosenOtRecvFinish(const crypto::Crhf &crhf, const BitVec &choices,
                   const Block *t, size_t n, Block *out,
                   uint64_t tweak_base, ChosenOtScratch &scratch)
{
    IRONMAN_CHECK(choices.size() == n);
    if (scratch.pad0.size() < n)
        scratch.pad0.resize(n);

    // The COT strings are contiguous, so one fused batch hash covers
    // every pad.
    Block *pads = scratch.pad0.data();
    crhf.hashBatch(t, pads, n, tweak_base);

    const Block *cipher = scratch.cipher.data();
    for (size_t i = 0; i < n; ++i)
        out[i] = cipher[2 * i + choices.get(i)] ^ pads[i];
}

void
chosenOtRecv(net::Channel &ch, const crypto::Crhf &crhf,
             const BitVec &choices, const BitVec &b, size_t b_offset,
             const Block *t, size_t n, Block *out, uint64_t tweak_base,
             ChosenOtScratch &scratch)
{
    chosenOtRecvWire(ch, choices, b, b_offset, n, scratch);
    chosenOtRecvFinish(crhf, choices, t, n, out, tweak_base, scratch);
}

// ---------------------------------------------------------------------------
// Width-packed wire variants
// ---------------------------------------------------------------------------

void
chosenOtSendPacked(net::Channel &ch, const crypto::Crhf &crhf,
                   const Block *m0, const Block *m1, size_t n,
                   unsigned wire_width, const Block &delta, const Block *q,
                   uint64_t tweak_base, ChosenOtScratch &scratch)
{
    IRONMAN_CHECK(wire_width >= 1 && wire_width <= 64);

    // Raw derand bits: ceil(n/8) bytes straight into the BitVec's word
    // storage (only bits < n are ever read).
    scratch.d.resize(n);
    ch.recvBytes(scratch.d.rawWords().data(), (n + 7) / 8);

    if (scratch.pad0.size() < n)
        scratch.pad0.resize(n);
    if (scratch.pad1.size() < n)
        scratch.pad1.resize(n);

    // Pads stay full-Block CRHF outputs — identical algebra to the
    // unpacked path; only the transmitted lanes shrink.
    Block *pad0 = scratch.pad0.data();
    Block *pad1 = scratch.pad1.data();
    for (size_t i = 0; i < n; ++i) {
        bool di = scratch.d.get(i);
        pad0[i] = q[i] ^ scalarMul(di, delta);
        pad1[i] = q[i] ^ scalarMul(!di, delta);
    }
    crhf.hashBatch(pad0, pad0, n, tweak_base);
    crhf.hashBatch(pad1, pad1, n, tweak_base);

    const size_t bytes = net::packedLaneBytes(2 * n, wire_width);
    if (scratch.packed.size() < bytes)
        scratch.packed.resize(bytes);
    uint8_t *lanes = scratch.packed.data();
    std::memset(lanes, 0, bytes);
    for (size_t i = 0; i < n; ++i) {
        net::putBitsLE(lanes, (2 * i) * wire_width, wire_width,
                       maskWidth((m0[i] ^ pad0[i]).lo, wire_width));
        net::putBitsLE(lanes, (2 * i + 1) * wire_width, wire_width,
                       maskWidth((m1[i] ^ pad1[i]).lo, wire_width));
    }
    ch.sendBytes(lanes, bytes);
}

void
chosenOtRecvSendDerandPacked(net::Channel &ch, const BitVec &choices,
                             const BitVec &b, size_t b_offset, size_t n,
                             ChosenOtScratch &scratch)
{
    IRONMAN_CHECK(choices.size() == n);
    BitVec &d = scratch.d;
    d.resize(n);
    for (size_t i = 0; i < n; ++i)
        d.set(i, choices.get(i) ^ b.get(b_offset + i));
    ch.sendBytes(d.rawWords().data(), (n + 7) / 8);
}

void
chosenOtRecvCiphertextsPacked(net::Channel &ch, size_t n,
                              unsigned wire_width,
                              ChosenOtScratch &scratch)
{
    const size_t bytes = net::packedLaneBytes(2 * n, wire_width);
    if (scratch.packed.size() < bytes)
        scratch.packed.resize(bytes);
    ch.recvBytes(scratch.packed.data(), bytes);
}

void
chosenOtRecvFinishPacked(const crypto::Crhf &crhf, const BitVec &choices,
                         const Block *t, size_t n, unsigned wire_width,
                         Block *out, uint64_t tweak_base,
                         ChosenOtScratch &scratch)
{
    IRONMAN_CHECK(choices.size() == n);
    if (scratch.pad0.size() < n)
        scratch.pad0.resize(n);

    Block *pads = scratch.pad0.data();
    crhf.hashBatch(t, pads, n, tweak_base);

    const uint8_t *lanes = scratch.packed.data();
    for (size_t i = 0; i < n; ++i) {
        const uint64_t lane = net::getBitsLE(
            lanes, (2 * i + choices.get(i)) * wire_width, wire_width);
        out[i] = Block::fromUint64(
            maskWidth(lane ^ pads[i].lo, wire_width));
    }
}

void
chosenOtRecvPacked(net::Channel &ch, const crypto::Crhf &crhf,
                   const BitVec &choices, const BitVec &b, size_t b_offset,
                   const Block *t, size_t n, unsigned wire_width,
                   Block *out, uint64_t tweak_base,
                   ChosenOtScratch &scratch)
{
    chosenOtRecvSendDerandPacked(ch, choices, b, b_offset, n, scratch);
    chosenOtRecvCiphertextsPacked(ch, n, wire_width, scratch);
    chosenOtRecvFinishPacked(crhf, choices, t, n, wire_width, out,
                             tweak_base, scratch);
}

} // namespace ironman::ot
