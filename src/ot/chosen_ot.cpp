#include "ot/chosen_ot.h"

#include "common/logging.h"

namespace ironman::ot {

void
chosenOtSend(net::Channel &ch, const crypto::Crhf &crhf, const Block *m0,
             const Block *m1, size_t n, const Block &delta, const Block *q,
             uint64_t tweak_base)
{
    BitVec d = ch.recvBits();
    IRONMAN_CHECK(d.size() == n);

    std::vector<Block> cipher(2 * n);
    for (size_t i = 0; i < n; ++i) {
        bool di = d.get(i);
        Block pad0 = crhf.hash(q[i] ^ scalarMul(di, delta), tweak_base + i);
        Block pad1 =
            crhf.hash(q[i] ^ scalarMul(!di, delta), tweak_base + i);
        cipher[2 * i] = m0[i] ^ pad0;
        cipher[2 * i + 1] = m1[i] ^ pad1;
    }
    ch.sendBlocks(cipher.data(), cipher.size());
}

void
chosenOtRecv(net::Channel &ch, const crypto::Crhf &crhf,
             const BitVec &choices, const BitVec &b, size_t b_offset,
             const Block *t, size_t n, Block *out, uint64_t tweak_base)
{
    IRONMAN_CHECK(choices.size() == n);

    BitVec d(n);
    for (size_t i = 0; i < n; ++i)
        d.set(i, choices.get(i) ^ b.get(b_offset + i));
    ch.sendBits(d);

    std::vector<Block> cipher(2 * n);
    ch.recvBlocks(cipher.data(), cipher.size());

    for (size_t i = 0; i < n; ++i) {
        Block pad = crhf.hash(t[i], tweak_base + i);
        out[i] = cipher[2 * i + choices.get(i)] ^ pad;
    }
}

} // namespace ironman::ot
