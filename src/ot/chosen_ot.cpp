#include "ot/chosen_ot.h"

#include "common/logging.h"

namespace ironman::ot {

void
chosenOtSend(net::Channel &ch, const crypto::Crhf &crhf, const Block *m0,
             const Block *m1, size_t n, const Block &delta, const Block *q,
             uint64_t tweak_base, ChosenOtScratch &scratch)
{
    ch.recvBitsInto(scratch.d);
    IRONMAN_CHECK(scratch.d.size() == n);

    if (scratch.cipher.size() < 2 * n)
        scratch.cipher.resize(2 * n);
    Block *cipher = scratch.cipher.data();
    for (size_t i = 0; i < n; ++i) {
        bool di = scratch.d.get(i);
        Block pad0 = crhf.hash(q[i] ^ scalarMul(di, delta), tweak_base + i);
        Block pad1 =
            crhf.hash(q[i] ^ scalarMul(!di, delta), tweak_base + i);
        cipher[2 * i] = m0[i] ^ pad0;
        cipher[2 * i + 1] = m1[i] ^ pad1;
    }
    ch.sendBlocks(cipher, 2 * n);
}

void
chosenOtSend(net::Channel &ch, const crypto::Crhf &crhf, const Block *m0,
             const Block *m1, size_t n, const Block &delta, const Block *q,
             uint64_t tweak_base)
{
    ChosenOtScratch scratch;
    chosenOtSend(ch, crhf, m0, m1, n, delta, q, tweak_base, scratch);
}

void
chosenOtRecv(net::Channel &ch, const crypto::Crhf &crhf,
             const BitVec &choices, const BitVec &b, size_t b_offset,
             const Block *t, size_t n, Block *out, uint64_t tweak_base,
             ChosenOtScratch &scratch)
{
    IRONMAN_CHECK(choices.size() == n);

    BitVec &d = scratch.d;
    d.resize(n);
    for (size_t i = 0; i < n; ++i)
        d.set(i, choices.get(i) ^ b.get(b_offset + i));
    ch.sendBits(d);

    if (scratch.cipher.size() < 2 * n)
        scratch.cipher.resize(2 * n);
    Block *cipher = scratch.cipher.data();
    ch.recvBlocks(cipher, 2 * n);

    for (size_t i = 0; i < n; ++i) {
        Block pad = crhf.hash(t[i], tweak_base + i);
        out[i] = cipher[2 * i + choices.get(i)] ^ pad;
    }
}

void
chosenOtRecv(net::Channel &ch, const crypto::Crhf &crhf,
             const BitVec &choices, const BitVec &b, size_t b_offset,
             const Block *t, size_t n, Block *out, uint64_t tweak_base)
{
    ChosenOtScratch scratch;
    chosenOtRecv(ch, crhf, choices, b, b_offset, t, n, out, tweak_base,
                 scratch);
}

} // namespace ironman::ot
