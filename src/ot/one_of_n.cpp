#include "ot/one_of_n.h"

#include <bit>

#include "common/logging.h"
#include "ot/chosen_ot.h"

namespace ironman::ot {

namespace {

unsigned
indexBits(size_t n_msgs)
{
    IRONMAN_CHECK(n_msgs >= 2 && std::has_single_bit(n_msgs),
                  "message count must be a power of two");
    return std::countr_zero(n_msgs);
}

/**
 * Pad of index @p idx: a hash chain over the keys selected by idx's
 * bits (LSB first). keys[j*2 + bit] is key j of value bit.
 */
Block
padOf(const crypto::Crhf &crhf, const Block *keys, unsigned bits,
      uint32_t idx, uint64_t tweak_base)
{
    Block acc = Block::zero();
    for (unsigned j = 0; j < bits; ++j) {
        unsigned bit = (idx >> j) & 1;
        acc = crhf.hash(acc ^ keys[2 * j + bit], tweak_base + j);
    }
    return acc;
}

} // namespace

void
oneOfNOtSend(net::Channel &ch, const crypto::Crhf &crhf,
             const Block *msgs, size_t n_msgs, size_t batch,
             const Block &delta, const Block *q, Rng &rng,
             uint64_t &tweak)
{
    const unsigned bits = indexBits(n_msgs);
    const size_t n_inst = batch * bits;

    // Fresh key pairs; delivered through one batched chosen OT.
    std::vector<Block> keys(batch * bits * 2);
    for (Block &k : keys)
        k = rng.nextBlock();

    std::vector<Block> m0(n_inst), m1(n_inst);
    for (size_t inst = 0; inst < batch; ++inst) {
        for (unsigned j = 0; j < bits; ++j) {
            m0[inst * bits + j] = keys[(inst * bits + j) * 2 + 0];
            m1[inst * bits + j] = keys[(inst * bits + j) * 2 + 1];
        }
    }

    uint64_t ot_tweak = tweak;
    uint64_t pad_tweak = tweak + n_inst;
    tweak += n_inst + batch * bits;

    ChosenOtScratch ot_scratch;
    chosenOtSend(ch, crhf, m0.data(), m1.data(), n_inst, delta, q,
                 ot_tweak, ot_scratch);

    // Every message masked by its index's pad.
    std::vector<Block> cipher(batch * n_msgs);
    for (size_t inst = 0; inst < batch; ++inst) {
        const Block *inst_keys = &keys[inst * bits * 2];
        for (uint32_t i = 0; i < n_msgs; ++i) {
            Block pad = padOf(crhf, inst_keys, bits, i,
                              pad_tweak + inst * bits);
            cipher[inst * n_msgs + i] = msgs[inst * n_msgs + i] ^ pad;
        }
    }
    ch.sendBlocks(cipher.data(), cipher.size());
}

std::vector<Block>
oneOfNOtRecv(net::Channel &ch, const crypto::Crhf &crhf,
             const std::vector<uint32_t> &choices, size_t n_msgs,
             const BitVec &b, size_t b_offset, const Block *t,
             uint64_t &tweak)
{
    const unsigned bits = indexBits(n_msgs);
    const size_t batch = choices.size();
    const size_t n_inst = batch * bits;

    BitVec bit_choices(n_inst);
    for (size_t inst = 0; inst < batch; ++inst) {
        IRONMAN_CHECK(choices[inst] < n_msgs);
        for (unsigned j = 0; j < bits; ++j)
            bit_choices.set(inst * bits + j,
                            (choices[inst] >> j) & 1);
    }

    uint64_t ot_tweak = tweak;
    uint64_t pad_tweak = tweak + n_inst;
    tweak += n_inst + batch * bits;

    std::vector<Block> got_keys(n_inst);
    ChosenOtScratch ot_scratch;
    chosenOtRecv(ch, crhf, bit_choices, b, b_offset, t, n_inst,
                 got_keys.data(), ot_tweak, ot_scratch);

    std::vector<Block> cipher(batch * n_msgs);
    ch.recvBlocks(cipher.data(), cipher.size());

    std::vector<Block> out(batch);
    for (size_t inst = 0; inst < batch; ++inst) {
        // Chain the received keys in index-bit order.
        Block acc = Block::zero();
        for (unsigned j = 0; j < bits; ++j)
            acc = crhf.hash(acc ^ got_keys[inst * bits + j],
                            pad_tweak + inst * bits + j);
        out[inst] = cipher[inst * n_msgs + choices[inst]] ^ acc;
    }
    return out;
}

} // namespace ironman::ot
