/**
 * @file
 * Correlated-OT (COT) correlation types.
 *
 * A batch of COT correlations with global offset Delta (Sec. 2.1):
 *   sender   holds q_i            (message pair is (q_i, q_i ^ Delta))
 *   receiver holds b_i, t_i = q_i ^ b_i*Delta.
 *
 * Everything the OTE stack produces and consumes is expressed in these
 * two views plus the CotPool cursor that hands out sub-ranges (base
 * COTs for SPCOT levels, LPN inputs, bootstrap reserves).
 */

#ifndef IRONMAN_OT_COT_H
#define IRONMAN_OT_COT_H

#include <cstdint>
#include <vector>

#include "common/bitvec.h"
#include "common/block.h"

namespace ironman::ot {

/** Sender view of a COT batch. */
struct CotSenderBatch
{
    Block delta;
    std::vector<Block> q; ///< q_i; message pair is (q_i, q_i ^ delta)

    size_t size() const { return q.size(); }
};

/** Receiver view of a COT batch. */
struct CotReceiverBatch
{
    BitVec choice;         ///< b_i
    std::vector<Block> t;  ///< t_i = q_i ^ b_i * delta

    size_t size() const { return t.size(); }
};

/** True iff the two views satisfy t_i == q_i ^ b_i*delta for all i. */
bool verifyCotCorrelation(const CotSenderBatch &s, const CotReceiverBatch &r);

/**
 * Cursor over a COT batch: protocols consume disjoint prefixes.
 * Both parties must consume in the same order for indices to line up.
 */
class CotCursor
{
  public:
    explicit CotCursor(size_t total) : limit(total) {}

    /** Claim @p n correlations; returns the first index. */
    size_t take(size_t n);

    size_t used() const { return next; }
    size_t remaining() const { return limit - next; }

  private:
    size_t next = 0;
    size_t limit;
};

} // namespace ironman::ot

#endif // IRONMAN_OT_COT_H
