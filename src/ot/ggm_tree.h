/**
 * @file
 * GGM puncturable-PRF trees with mixed-radix m-ary expansion.
 *
 * The sender expands a seed level by level; at every level it records,
 * for each child-slot residue c, the XOR of all nodes occupying slot c
 * (the K^i_c "keys" of Sec. 2.3.1 / Fig. 3(b), generalized from
 * even/odd to m residues). The receiver, holding for each level all
 * sums except the one at its punctured digit, reconstructs every leaf
 * except the one at index alpha.
 *
 * Tree shapes are mixed-radix: a leaf count of 8192 with target arity
 * 4 becomes level arities [2, 4, 4, 4, 4, 4, 4]. This is how the
 * paper's Table 4 trees (l = 8192, 4-ary) are realizable.
 *
 * The entry points are span-based and allocation-free: callers
 * provide the output leaf span, a flattened level-sum span described
 * by GgmSumLayout, and a reusable GgmScratch.
 */

#ifndef IRONMAN_OT_GGM_TREE_H
#define IRONMAN_OT_GGM_TREE_H

#include <cstdint>
#include <vector>

#include "common/block.h"
#include "crypto/prg.h"
#include "crypto/seed_expander.h"

namespace ironman::ot {

/**
 * Per-level arities for a tree with @p leaves leaves (power of two)
 * and target arity @p m (power of two, >= 2). Lower-arity levels, if
 * any, are placed at the top so the wide levels get the bulk of the
 * nodes.
 */
std::vector<unsigned> treeArities(size_t leaves, unsigned m);

/** Digits of @p alpha in the mixed radix of @p arities (MSD first). */
std::vector<unsigned> alphaDigits(size_t alpha,
                                  const std::vector<unsigned> &arities);

/** Same, writing into caller storage (arities.size() entries). */
void alphaDigitsInto(size_t alpha, const std::vector<unsigned> &arities,
                     unsigned *digits);

/**
 * Flattened storage layout of the per-level slot sums: level i's
 * arities[i] sums live at [offset[i], offset[i] + arities[i]).
 */
struct GgmSumLayout
{
    std::vector<unsigned> arities; ///< per-level arities (MSD first)
    std::vector<uint32_t> offset;  ///< per-level start into the flat span
    size_t leaves = 0;             ///< product of arities
    size_t total = 0;              ///< flat span length (sum of arities)

    static GgmSumLayout of(const std::vector<unsigned> &arities);
};

/**
 * Reusable scratch for allocation-free expansion/reconstruction.
 * Buffers grow on demand and are retained, so steady-state use
 * performs no heap allocation. One instance per thread.
 */
struct GgmScratch
{
    std::vector<Block> ping;     ///< level ping-pong buffer
    std::vector<Block> pong;     ///< level ping-pong buffer
    std::vector<Block> parents;  ///< reconstruction: packed known parents
    std::vector<Block> children; ///< reconstruction: their children
    std::vector<Block> acc;      ///< reconstruction: per-slot partial sums

    /** Pre-size every buffer for trees up to @p leaves leaves. */
    void reserve(size_t leaves, unsigned max_arity);
};

/**
 * Expand @p seed through the levels of @p layout.
 *
 * @param leaves Receives layout.leaves blocks (the tree leaves).
 * @param level_sums Receives layout.total blocks (the flattened K keys).
 * @param leaf_sum Receives the XOR of all leaves.
 */
void ggmExpandInto(crypto::SeedExpander &prg, const Block &seed,
                   const GgmSumLayout &layout, GgmScratch &scratch,
                   Block *leaves, Block *level_sums, Block *leaf_sum);

/**
 * Reconstruct all leaves except @p alpha into @p leaves
 * (layout.leaves blocks; the entry at alpha is set to zero).
 *
 * @param known_sums Flat span per @p layout; the entry at level i's
 *        punctured digit is ignored.
 */
void ggmReconstructInto(crypto::SeedExpander &prg, size_t alpha,
                        const GgmSumLayout &layout, const Block *known_sums,
                        GgmScratch &scratch, Block *leaves);

/**
 * Reusable scratch of the level-synchronous cross-tree batch path:
 * ping-pong matrices holding ALL trees' level-i nodes lane-contiguous
 * (tree-major), so each level of the whole batch is ONE SeedExpander
 * call. Grow-only; one instance per thread.
 */
struct GgmBatchScratch
{
    std::vector<Block> ping;      ///< cross-tree level matrix
    std::vector<Block> pong;      ///< cross-tree level matrix
    std::vector<Block> seeds;     ///< gathered/zero root seeds
    std::vector<Block> acc;       ///< per-slot partial sums (max arity)
    std::vector<unsigned> digits; ///< reconstruction: trees x levels
    std::vector<size_t> holes;    ///< reconstruction: per-tree hole path

    /**
     * Pre-size for @p trees trees of @p layout. @p staged_leaves must
     * be true when the final level cannot be written straight into the
     * caller's span (leaf_stride != layout.leaves), which stages the
     * last level in the ping-pong matrices too.
     */
    void reserve(size_t trees, const GgmSumLayout &layout,
                 bool staged_leaves);
};

/**
 * Level-synchronous expansion of @p num_trees trees through @p layout:
 * every level of the whole batch is ONE prg.expand() call over the
 * lane-contiguous cross-tree node matrix (the matrix layout is
 * self-preserving: seed i's children land at i*m..i*m+m-1, so
 * tree-major stays tree-major). Bit-identical to ggmExpandInto() per
 * tree.
 *
 * When @p leaf_stride == layout.leaves the final level is expanded
 * DIRECTLY into @p leaves (tree tr at leaves + tr*leaf_stride) — the
 * scatter-free LPN feed aliases this to the reserve segment; otherwise
 * the last level is staged and copied per tree.
 *
 * @param leaf_sums Receives each tree's XOR-of-leaves (num_trees
 *        entries); may be nullptr.
 */
void ggmExpandBatchInto(crypto::SeedExpander &prg, const Block *seeds,
                        size_t num_trees, const GgmSumLayout &layout,
                        GgmBatchScratch &scratch, Block *leaves,
                        size_t leaf_stride, Block *level_sums,
                        size_t sums_stride, Block *leaf_sums);

/**
 * Level-synchronous reconstruction of @p num_trees punctured trees:
 * one prg.expand() call per level over the cross-tree matrix (the
 * punctured node of each tree rides along as a zero seed whose
 * children are discarded and recovered from the known sums, so no
 * parent packing/unpacking pass is needed). Bit-identical leaf output
 * to ggmReconstructInto() per tree; tree tr's known sums are read at
 * known_sums + tr*sums_stride, its leaves written at
 * leaves + tr*leaf_stride (direct final-level expansion when
 * leaf_stride == layout.leaves, staged otherwise).
 */
void ggmReconstructBatchInto(crypto::SeedExpander &prg,
                             const size_t *alphas, size_t num_trees,
                             const GgmSumLayout &layout,
                             const Block *known_sums, size_t sums_stride,
                             GgmBatchScratch &scratch, Block *leaves,
                             size_t leaf_stride);

} // namespace ironman::ot

#endif // IRONMAN_OT_GGM_TREE_H
