/**
 * @file
 * GGM puncturable-PRF trees with mixed-radix m-ary expansion.
 *
 * The sender expands a seed level by level; at every level it records,
 * for each child-slot residue c, the XOR of all nodes occupying slot c
 * (the K^i_c "keys" of Sec. 2.3.1 / Fig. 3(b), generalized from
 * even/odd to m residues). The receiver, holding for each level all
 * sums except the one at its punctured digit, reconstructs every leaf
 * except the one at index alpha.
 *
 * Tree shapes are mixed-radix: a leaf count of 8192 with target arity
 * 4 becomes level arities [2, 4, 4, 4, 4, 4, 4]. This is how the
 * paper's Table 4 trees (l = 8192, 4-ary) are realizable.
 */

#ifndef IRONMAN_OT_GGM_TREE_H
#define IRONMAN_OT_GGM_TREE_H

#include <cstdint>
#include <vector>

#include "common/block.h"
#include "crypto/prg.h"

namespace ironman::ot {

/**
 * Per-level arities for a tree with @p leaves leaves (power of two)
 * and target arity @p m (power of two, >= 2). Lower-arity levels, if
 * any, are placed at the top so the wide levels get the bulk of the
 * nodes.
 */
std::vector<unsigned> treeArities(size_t leaves, unsigned m);

/** Digits of @p alpha in the mixed radix of @p arities (MSD first). */
std::vector<unsigned> alphaDigits(size_t alpha,
                                  const std::vector<unsigned> &arities);

/** Sender-side expansion result. */
struct GgmExpansion
{
    /// All leaf values, in index order.
    std::vector<Block> leaves;
    /// levelSums[i][c]: XOR of slot-c nodes at level i+1 (the K keys).
    std::vector<std::vector<Block>> levelSums;
    /// XOR of all leaves (consumed by the final node-recovery step).
    Block leafSum;
};

/** Expand @p seed through levels of @p arities. */
GgmExpansion ggmExpand(crypto::TreePrg &prg, const Block &seed,
                       const std::vector<unsigned> &arities);

/** Receiver-side reconstruction result. */
struct GgmReconstruction
{
    /// Leaf values; entry at alpha is Block::zero() (unknown).
    std::vector<Block> leaves;
    size_t alpha;
};

/**
 * Reconstruct all leaves except @p alpha.
 *
 * @param known_sums known_sums[i][c] must equal the sender's
 *        levelSums[i][c] for every c != digit_i(alpha); the entry at
 *        the punctured digit is ignored (pass anything).
 */
GgmReconstruction ggmReconstruct(crypto::TreePrg &prg, size_t alpha,
                                 const std::vector<unsigned> &arities,
                                 const std::vector<std::vector<Block>>
                                     &known_sums);

} // namespace ironman::ot

#endif // IRONMAN_OT_GGM_TREE_H
