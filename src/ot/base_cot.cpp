#include "ot/base_cot.h"

namespace ironman::ot {

std::pair<CotSenderBatch, CotReceiverBatch>
dealBaseCots(Rng &rng, const Block &delta, size_t n)
{
    CotSenderBatch s;
    s.delta = delta;
    s.q = rng.nextBlocks(n);

    CotReceiverBatch r;
    r.choice = rng.nextBits(n);
    r.t.resize(n);
    for (size_t i = 0; i < n; ++i)
        r.t[i] = s.q[i] ^ scalarMul(r.choice.get(i), delta);

    return {std::move(s), std::move(r)};
}

} // namespace ironman::ot
