/**
 * @file
 * Reusable per-engine workspace of the OT-extension hot path.
 *
 * The historical extension path allocated fresh vector<Block> buffers
 * on every extend() call and copied through nested vector<vector<>>
 * message structures — the software bottleneck the paper's Fig. 1
 * motivation measures. OtWorkspace replaces all of that with one
 * arena of Block buffers sized once from FerretParams plus grow-only
 * protocol scratch, so a warm FerretCotSender/Receiver::extendInto()
 * performs zero heap allocations (asserted by a counting allocator in
 * tests/test_workspace_engine.cpp).
 *
 * The workspace also owns the engine's fixed ThreadPool: batch-SPCOT
 * tree expansion and the LPN gather-XOR both fan out over it with
 * deterministic range partitions, so multi-threaded output is
 * bit-identical to single-threaded.
 *
 * For the pipelined engine the arena carves TWO leaf-matrix slots:
 * while iteration i's LPN encode reads the rows scattered from slot
 * (i mod 2), iteration i+1's SPCOT transcript expands into slot
 * (i+1 mod 2). The stage-handoff invariant (DESIGN.md invariant 10):
 * transcript slot N is never written while the LPN stage of slot N-1
 * is still reading buffers derived from it.
 *
 * The workspace additionally holds the engine's precomputed LPN index
 * tape (the matrix is fixed by the public seed, so the index unpack
 * and `% k` reduction happen once per engine, not once per
 * extension). Tapes above kLpnTapeBytesCap fall back to the streaming
 * encoder to bound memory on the 2^23+ parameter sets.
 */

#ifndef IRONMAN_OT_OT_WORKSPACE_H
#define IRONMAN_OT_OT_WORKSPACE_H

#include <cstdint>
#include <vector>

#include "common/bitvec.h"
#include "common/block.h"
#include "common/thread_pool.h"
#include "ot/ferret_params.h"
#include "ot/lpn.h"
#include "ot/spcot.h"

namespace ironman::ot {

/** Bump allocator over one contiguous Block buffer. */
class BlockArena
{
  public:
    /** Size the arena (one allocation) and rewind the cursor. */
    void
    reserve(size_t blocks)
    {
        storage.resize(blocks);
        next = 0;
    }

    /** Carve @p n blocks; panics on overflow (sizing bug). */
    Block *alloc(size_t n);

    void rewind() { next = 0; }

    size_t capacity() const { return storage.size(); }
    size_t used() const { return next; }

  private:
    std::vector<Block> storage;
    size_t next = 0;
};

/** All per-engine mutable state of one OTE endpoint. */
struct OtWorkspace
{
    /** Index tapes above this size fall back to streaming encode. */
    static constexpr size_t kLpnTapeBytesCap = size_t(256) << 20;

    /**
     * True when @p p supports the scatter-free LPN feed: every
     * regular-noise bucket is exactly one whole GGM tree, so the
     * t x l leaf matrix IS the first t*l rows of the LPN staging
     * vector and SPCOT can expand/reconstruct straight into it.
     */
    static bool
    scatterFreeFeed(const FerretParams &p)
    {
        return p.bucketSize() == p.treeLeaves();
    }

    /**
     * Arena blocks one engine role needs for @p p. Copy-feed layout:
     * @p leaf_slots t x l leaf matrices plus the n staging rows.
     * Scatter-free layout (bucketSize() == treeLeaves() and
     * @p scatter_free): the separate staging rows disappear —
     * @p leaf_slots row-slots of t*l blocks each (>= n), and the leaf
     * matrix of slot s ALIASES row-slot s. The pipelined sender keeps
     * two slots (iteration i's rows encode in place while iteration
     * i+1's transcript expands into the other slot); the receiver
     * needs one.
     */
    static size_t requiredBlocks(const FerretParams &p,
                                 int leaf_slots = 1,
                                 bool scatter_free = false);

    /**
     * (Re)size everything for @p p and @p threads. Idempotent: a
     * second call with identical arguments does nothing, so the first
     * extend() is the only warm-up. @p scatter_free requests the
     * aliased arena layout (ignored unless scatterFreeFeed(p)).
     */
    void prepare(const FerretParams &p, int threads, int leaf_slots = 1,
                 bool scatter_free = false);

    /** True when prepare() selected the scatter-free (aliased) layout. */
    bool scatterFree() const { return scatterFreeActive; }

    common::ThreadPool pool{1};
    BlockArena arena;
    /// t x treeLeaves() slots; scatter-free: leaf[s] == rowSlot(s).
    Block *leaf[2] = {nullptr, nullptr};
    /// n staging rows (z / y); scatter-free: aliases leaf[0].
    Block *rows = nullptr;

    SpcotWorkspace spcot;
    std::vector<LpnEncodeScratch> lpn; ///< one per pool thread
    LpnIndexTape tape;                 ///< empty when above the cap

    // Receiver-side bit staging.
    BitVec e; ///< LPN input bits
    BitVec x; ///< LPN output bits
    std::vector<size_t> alphas;

  private:
    bool ready = false;
    bool scatterFreeActive = false;
    FerretParams preparedFor;
    int preparedThreads = 0;
    int preparedSlots = 0;
};

} // namespace ironman::ot

#endif // IRONMAN_OT_OT_WORKSPACE_H
