/**
 * @file
 * 128 x n GF(2) matrix transpose — the core data movement of
 * IKNP-style OT extension (column-major PRG output to row-major COT
 * strings). Implemented with 64x64 bit-block transposes
 * (Hacker's-Delight style butterflies).
 */

#ifndef IRONMAN_OT_BIT_TRANSPOSE_H
#define IRONMAN_OT_BIT_TRANSPOSE_H

#include <cstdint>
#include <vector>

#include "common/bitvec.h"
#include "common/block.h"

namespace ironman::ot {

/** In-place transpose of a 64x64 bit matrix (row i = a[i]). */
void transpose64(uint64_t a[64]);

/**
 * Transpose 128 column bit-vectors of length n (n a multiple of 64)
 * into n row blocks: row i's bit j equals columns[j].get(i). Writes
 * into caller-provided storage (@p rows, n blocks) — allocation-free.
 */
void transposeColumnsToBlocks(const std::vector<BitVec> &columns,
                              size_t n, Block *rows);

} // namespace ironman::ot

#endif // IRONMAN_OT_BIT_TRANSPOSE_H
