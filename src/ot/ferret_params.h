/**
 * @file
 * PCG-style OTE parameter sets (Table 4 of the paper).
 *
 * Each set fixes the LPN instance (n, k, t) and the GGM tree size l.
 * Our tree size is derived as the next power of two >= ceil(n/t) (the
 * regular-noise bucket width). For the 2^20..2^22 sets this equals the
 * paper's l; for 2^23/2^24 the paper lists l = 8192 although
 * ceil(n/t) > 8192 — we keep the paper's (n, k, t) and grow the tree
 * to 16384 so every bucket is fully covered by its tree (documented in
 * EXPERIMENTS.md; noise weight and security are unchanged).
 */

#ifndef IRONMAN_OT_FERRET_PARAMS_H
#define IRONMAN_OT_FERRET_PARAMS_H

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "crypto/prg.h"

namespace ironman::ot {

/** One OTE protocol configuration. */
struct FerretParams
{
    std::string name;     ///< e.g. "2^20"
    size_t n = 0;         ///< LPN output length
    size_t k = 0;         ///< LPN input length (pre-generated COTs)
    size_t t = 0;         ///< noise weight == number of GGM trees
    size_t paperEll = 0;  ///< l as printed in Table 4 (reporting only)
    double paperBitSec = 0.0; ///< bit security claimed in Table 4

    unsigned arity = 4;   ///< GGM tree arity (Ironman default: 4-ary)
    crypto::PrgKind prg = crypto::PrgKind::ChaCha8;
    unsigned lpnWeight = 10; ///< non-zeros per row of A
    uint64_t lpnSeed = 0x120394785612aa01ULL;

    /** Regular-noise bucket width: ceil(n / t). */
    size_t bucketSize() const { return (n + t - 1) / t; }

    /** GGM tree leaf count: next power of two >= bucketSize(). */
    size_t treeLeaves() const { return std::bit_ceil(bucketSize()); }

    /** Base COTs consumed per tree. */
    size_t cotsPerTree() const { return std::countr_zero(treeLeaves()); }

    /** Base COTs one extension consumes (and re-reserves): k + t*log2(l). */
    size_t reservedCots() const { return k + t * cotsPerTree(); }

    /** Fresh COTs each extension hands to the application. */
    size_t usableOts() const { return n - reservedCots(); }
};

/**
 * Table 4 parameter set for 2^logOts output OTs per execution,
 * logOts in [20, 24].
 */
FerretParams paperParamSet(int log_ots);

/** All five Table 4 sets, in order. */
std::vector<FerretParams> allPaperParamSets();

/**
 * A small set for unit tests and examples: n = 12800, k = 1024,
 * t = 20 (NOT cryptographically sized — protocol-correctness only).
 * bucketSize() (640) != treeLeaves() (1024), so engines on this set
 * use the copying LPN feed.
 */
FerretParams tinyTestParams();

/**
 * The tiny set with n raised to t * treeLeaves() (n = 20480, bucket
 * width 1024 == tree leaves), so every bucket is exactly one tree and
 * engines take the scatter-free LPN feed. NOT cryptographically
 * sized — protocol-correctness and feed-equivalence tests only.
 */
FerretParams tinyAlignedParams();

} // namespace ironman::ot

#endif // IRONMAN_OT_FERRET_PARAMS_H
