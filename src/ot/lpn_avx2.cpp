/**
 * @file
 * AVX2 engine of the LPN gather-XOR. This translation unit is the only
 * one compiled with -mavx2; dispatch in lpn.cpp is guarded by a
 * runtime CPUID check (mirroring the AES-NI engine in
 * crypto/aes_ni.cpp), so the binary still runs on SSE2-only machines.
 */

#include "ot/lpn.h"

#if (defined(__x86_64__) || defined(__i386__)) && defined(__AVX2__)
#include <immintrin.h>
#define IRONMAN_HAVE_AVX2_BUILD 1
#endif

namespace ironman::ot::detail {

bool
lpnAvx2Supported()
{
#ifdef IRONMAN_HAVE_AVX2_BUILD
    return __builtin_cpu_supports("avx2");
#else
    return false;
#endif
}

#ifdef IRONMAN_HAVE_AVX2_BUILD

namespace {

constexpr size_t kLane = LpnIndexTape::kLane;

/**
 * Prefetch one lane group's k-vector taps (the only randomly
 * addressed stream; the tape reads sequentially). Mirrors the
 * prefetchGroupTaps helper of the scalar/SSE2 kernels in lpn.cpp.
 */
inline void
prefetchGroupTaps(const Block *in, const uint32_t *group_tape,
                  unsigned d)
{
    for (unsigned i = 0; i < d; ++i) {
        const uint32_t *gi = group_tape + i * kLane;
        for (size_t x = 0; x < kLane; ++x)
            _mm_prefetch(reinterpret_cast<const char *>(in + gi[x]),
                         _MM_HINT_T0);
    }
}

void
scalarRows(const Block *in, Block *inout, const uint32_t *tape,
           size_t row0, size_t count, unsigned d)
{
    for (size_t j = 0; j < count; ++j) {
        const size_t r = row0 + j;
        const uint32_t *g = tape + (r / kLane) * size_t(d) * kLane +
                            (r % kLane);
        Block acc = inout[j];
        for (unsigned i = 0; i < d; ++i)
            acc ^= in[g[i * kLane]];
        inout[j] = acc;
    }
}

} // namespace

void
lpnGatherXorAvx2(const Block *in, Block *inout, const uint32_t *tape,
                 size_t row0, size_t count, unsigned d)
{
    const bool pf = lpnPrefetchEnabled();
    size_t j = 0;
    while (j < count && ((row0 + j) % kLane) != 0) {
        scalarRows(in, inout + j, tape, row0 + j, 1, d);
        ++j;
    }

    // Four 256-bit accumulators cover one 8-row group (adjacent output
    // rows are contiguous, so each ymm holds two rows). The gathered
    // 16-byte inputs land at random addresses and are paired with one
    // vinserti128 per two taps; the next group's taps prefetch while
    // this group's XOR chains retire.
    for (; j + kLane <= count; j += kLane) {
        const size_t r = row0 + j;
        const uint32_t *g = tape + (r / kLane) * size_t(d) * kLane;
        if (pf && j + 2 * kLane <= count)
            prefetchGroupTaps(in, g + size_t(d) * kLane, d);
        __m256i acc[kLane / 2];
        for (size_t x = 0; x < kLane / 2; ++x)
            acc[x] = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(inout + j + 2 * x));
        for (unsigned i = 0; i < d; ++i) {
            const uint32_t *gi = g + i * kLane;
            for (size_t x = 0; x < kLane / 2; ++x) {
                __m128i lo = _mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(in + gi[2 * x]));
                __m128i hi = _mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(
                        in + gi[2 * x + 1]));
                __m256i pair = _mm256_inserti128_si256(
                    _mm256_castsi128_si256(lo), hi, 1);
                acc[x] = _mm256_xor_si256(acc[x], pair);
            }
        }
        for (size_t x = 0; x < kLane / 2; ++x)
            _mm256_storeu_si256(
                reinterpret_cast<__m256i *>(inout + j + 2 * x), acc[x]);
    }

    if (j < count)
        scalarRows(in, inout + j, tape, row0 + j, count - j, d);
}

void
lpnGatherXorAvx2Gather(const Block *in, Block *inout,
                       const uint32_t *tape, size_t row0, size_t count,
                       unsigned d)
{
    const bool pf = lpnPrefetchEnabled();
    size_t j = 0;
    while (j < count && ((row0 + j) % kLane) != 0) {
        scalarRows(in, inout + j, tape, row0 + j, 1, d);
        ++j;
    }

    // vpgatherqq variant: per tap, four 4-lane gathers fetch the lo
    // and hi halves of 8 blocks; accumulators stay in split lo/hi
    // form and are interleaved back into blocks once per group. The
    // indices are doubled so the gather's scale-8 addressing reaches
    // 16-byte entries.
    const long long *base_lo = reinterpret_cast<const long long *>(in);
    const long long *base_hi = base_lo + 1;
    for (; j + kLane <= count; j += kLane) {
        const size_t r = row0 + j;
        const uint32_t *g = tape + (r / kLane) * size_t(d) * kLane;
        if (pf && j + 2 * kLane <= count)
            prefetchGroupTaps(in, g + size_t(d) * kLane, d);
        __m256i lo0 = _mm256_setzero_si256(); // rows j..j+3, lo lanes
        __m256i hi0 = _mm256_setzero_si256();
        __m256i lo1 = _mm256_setzero_si256(); // rows j+4..j+7
        __m256i hi1 = _mm256_setzero_si256();
        for (unsigned i = 0; i < d; ++i) {
            const __m256i idx = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(g + i * kLane));
            const __m256i q0 = _mm256_slli_epi64(
                _mm256_cvtepu32_epi64(_mm256_castsi256_si128(idx)), 1);
            const __m256i q1 = _mm256_slli_epi64(
                _mm256_cvtepu32_epi64(_mm256_extracti128_si256(idx, 1)),
                1);
            lo0 = _mm256_xor_si256(lo0,
                                   _mm256_i64gather_epi64(base_lo, q0, 8));
            hi0 = _mm256_xor_si256(hi0,
                                   _mm256_i64gather_epi64(base_hi, q0, 8));
            lo1 = _mm256_xor_si256(lo1,
                                   _mm256_i64gather_epi64(base_lo, q1, 8));
            hi1 = _mm256_xor_si256(hi1,
                                   _mm256_i64gather_epi64(base_hi, q1, 8));
        }
        for (int half = 0; half < 2; ++half) {
            const __m256i lo = half ? lo1 : lo0;
            const __m256i hi = half ? hi1 : hi0;
            Block *dst = inout + j + 4 * half;
            // [l0,h0,l2,h2] / [l1,h1,l3,h3] -> row pairs in order.
            const __m256i even = _mm256_unpacklo_epi64(lo, hi);
            const __m256i odd = _mm256_unpackhi_epi64(lo, hi);
            const __m256i b01 = _mm256_permute2x128_si256(even, odd,
                                                          0x20);
            const __m256i b23 = _mm256_permute2x128_si256(even, odd,
                                                          0x31);
            __m256i *p0 = reinterpret_cast<__m256i *>(dst);
            __m256i *p1 = reinterpret_cast<__m256i *>(dst + 2);
            _mm256_storeu_si256(
                p0, _mm256_xor_si256(_mm256_loadu_si256(p0), b01));
            _mm256_storeu_si256(
                p1, _mm256_xor_si256(_mm256_loadu_si256(p1), b23));
        }
    }

    if (j < count)
        scalarRows(in, inout + j, tape, row0 + j, count - j, d);
}

void
lpnBitGatherXorAvx2(const uint64_t *in_words, uint64_t *inout_words,
                    const uint32_t *tape, size_t rows, unsigned d)
{
    // One 8-row lane group per iteration: vpgatherdd fetches the
    // 32-bit words holding each tap's bit, vpsrlvd aligns the bits to
    // lane bit 0, and the group's eight result bits leave as one
    // movemask byte.
    const int *in32 = reinterpret_cast<const int *>(in_words);
    uint8_t *out_bytes = reinterpret_cast<uint8_t *>(inout_words);
    const __m256i low5 = _mm256_set1_epi32(31);
    size_t r = 0;
    for (; r + kLane <= rows; r += kLane) {
        const uint32_t *g = tape + (r / kLane) * size_t(d) * kLane;
        __m256i acc = _mm256_setzero_si256();
        for (unsigned i = 0; i < d; ++i) {
            const __m256i idx = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(g + i * kLane));
            const __m256i words = _mm256_i32gather_epi32(
                in32, _mm256_srli_epi32(idx, 5), 4);
            acc = _mm256_xor_si256(
                acc, _mm256_srlv_epi32(words,
                                       _mm256_and_si256(idx, low5)));
        }
        const int mask = _mm256_movemask_ps(
            _mm256_castsi256_ps(_mm256_slli_epi32(acc, 31)));
        out_bytes[r / 8] ^= uint8_t(mask);
    }
    for (; r < rows; ++r) {
        const uint32_t *g = tape + (r / kLane) * size_t(d) * kLane +
                            (r % kLane);
        uint64_t bit = 0;
        for (unsigned i = 0; i < d; ++i) {
            const uint32_t idx = g[i * kLane];
            bit ^= (in_words[idx >> 6] >> (idx & 63)) & 1;
        }
        inout_words[r >> 6] ^= bit << (r & 63);
    }
}

#else // !IRONMAN_HAVE_AVX2_BUILD

void
lpnGatherXorAvx2(const Block *, Block *, const uint32_t *, size_t, size_t,
                 unsigned)
{
    // Unreachable: lpnAvx2Supported() returned false.
}

void
lpnGatherXorAvx2Gather(const Block *, Block *, const uint32_t *, size_t,
                       size_t, unsigned)
{
}

void
lpnBitGatherXorAvx2(const uint64_t *, uint64_t *, const uint32_t *,
                    size_t, unsigned)
{
}

#endif

} // namespace ironman::ot::detail
