/**
 * @file
 * AVX2 engine of the LPN gather-XOR. This translation unit is the only
 * one compiled with -mavx2; dispatch in lpn.cpp is guarded by a
 * runtime CPUID check (mirroring the AES-NI engine in
 * crypto/aes_ni.cpp), so the binary still runs on SSE2-only machines.
 */

#include "ot/lpn.h"

#if (defined(__x86_64__) || defined(__i386__)) && defined(__AVX2__)
#include <immintrin.h>
#define IRONMAN_HAVE_AVX2_BUILD 1
#endif

namespace ironman::ot::detail {

bool
lpnAvx2Supported()
{
#ifdef IRONMAN_HAVE_AVX2_BUILD
    return __builtin_cpu_supports("avx2");
#else
    return false;
#endif
}

#ifdef IRONMAN_HAVE_AVX2_BUILD

namespace {

constexpr size_t kLane = LpnIndexTape::kLane;

void
scalarRows(const Block *in, Block *inout, const uint32_t *tape,
           size_t row0, size_t count, unsigned d)
{
    for (size_t j = 0; j < count; ++j) {
        const size_t r = row0 + j;
        const uint32_t *g = tape + (r / kLane) * size_t(d) * kLane +
                            (r % kLane);
        Block acc = inout[j];
        for (unsigned i = 0; i < d; ++i)
            acc ^= in[g[i * kLane]];
        inout[j] = acc;
    }
}

} // namespace

void
lpnGatherXorAvx2(const Block *in, Block *inout, const uint32_t *tape,
                 size_t row0, size_t count, unsigned d)
{
    size_t j = 0;
    while (j < count && ((row0 + j) % kLane) != 0) {
        scalarRows(in, inout + j, tape, row0 + j, 1, d);
        ++j;
    }

    // Four 256-bit accumulators cover one 8-row group (adjacent output
    // rows are contiguous, so each ymm holds two rows). The gathered
    // 16-byte inputs land at random addresses and are paired with one
    // vinserti128 per two taps.
    for (; j + kLane <= count; j += kLane) {
        const size_t r = row0 + j;
        const uint32_t *g = tape + (r / kLane) * size_t(d) * kLane;
        __m256i acc[kLane / 2];
        for (size_t x = 0; x < kLane / 2; ++x)
            acc[x] = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(inout + j + 2 * x));
        for (unsigned i = 0; i < d; ++i) {
            const uint32_t *gi = g + i * kLane;
            for (size_t x = 0; x < kLane / 2; ++x) {
                __m128i lo = _mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(in + gi[2 * x]));
                __m128i hi = _mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(
                        in + gi[2 * x + 1]));
                __m256i pair = _mm256_inserti128_si256(
                    _mm256_castsi128_si256(lo), hi, 1);
                acc[x] = _mm256_xor_si256(acc[x], pair);
            }
        }
        for (size_t x = 0; x < kLane / 2; ++x)
            _mm256_storeu_si256(
                reinterpret_cast<__m256i *>(inout + j + 2 * x), acc[x]);
    }

    if (j < count)
        scalarRows(in, inout + j, tape, row0 + j, count - j, d);
}

#else // !IRONMAN_HAVE_AVX2_BUILD

void
lpnGatherXorAvx2(const Block *, Block *, const uint32_t *, size_t, size_t,
                 unsigned)
{
    // Unreachable: lpnAvx2Supported() returned false.
}

#endif

} // namespace ironman::ot::detail
