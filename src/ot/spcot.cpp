#include "ot/spcot.h"

#include <algorithm>
#include <bit>

#include "common/logging.h"

namespace ironman::ot {

std::vector<unsigned>
SpcotConfig::levelArities() const
{
    return treeArities(numLeaves, arity);
}

size_t
SpcotConfig::cotsPerTree() const
{
    return std::countr_zero(numLeaves);
}

namespace {

/** log2 of a power-of-two arity. */
unsigned
log2Arity(unsigned m)
{
    return std::countr_zero(m);
}

} // namespace

void
SpcotShape::prepare(const SpcotConfig &config)
{
    cfg = config;
    arities = treeArities(config.numLeaves, config.arity);
    layout = GgmSumLayout::of(arities);
    leaves = layout.leaves;

    const size_t num_levels = arities.size();
    instOffset.assign(num_levels, 0);
    sumOffset.assign(num_levels, 0);
    miniIndex.assign(num_levels, -1);
    miniLayout.assign(num_levels, GgmSumLayout{});
    cotsPerTree = 0;
    sumsPerTree = 0;
    wideLevels = 0;

    for (size_t lvl = 0; lvl < num_levels; ++lvl) {
        instOffset[lvl] = uint32_t(cotsPerTree);
        sumOffset[lvl] = uint32_t(sumsPerTree);
        const unsigned m = arities[lvl];
        if (m == 2) {
            cotsPerTree += 1;
        } else {
            cotsPerTree += log2Arity(m);
            sumsPerTree += m;
            miniIndex[lvl] = int(wideLevels++);
            miniLayout[lvl] = GgmSumLayout::of(treeArities(m, 2));
        }
    }
    extraPerTree = sumsPerTree + 1; // + the final recovery block
    IRONMAN_CHECK(cotsPerTree == cfg.cotsPerTree());
}

void
SpcotWorkspace::prepare(const SpcotConfig &config, size_t num_trees,
                        int threads, bool for_sender)
{
    const bool same_cfg = ready && shape.cfg == config;
    const bool same_size = same_cfg && preparedTrees == num_trees;
    if (same_size && preparedThreads >= threads &&
        (for_sender ? senderReady : receiverReady))
        return;

    if (!same_cfg) {
        shape.prepare(config);
        workers.clear(); // expanders are bound to (prg, arity)
        preparedThreads = 0;
    }
    if (!same_size)
        senderReady = receiverReady = false;

    // The requested role's buffer set — an engine only ever plays one
    // role, so the other set stays unallocated. (Receiver transcript
    // slots grow lazily inside the stage functions.)
    const size_t n_inst = num_trees * shape.cotsPerTree;
    if (for_sender) {
        extra.resize(num_trees * shape.extraPerTree);
        seeds.resize(num_trees);
        miniSeeds.resize(num_trees * shape.wideLevels);
        otM0.resize(n_inst);
        otM1.resize(n_inst);
    } else {
        otOut.resize(n_inst);
    }

    const unsigned max_arity =
        std::max(2u, *std::max_element(shape.arities.begin(),
                                       shape.arities.end()));
    const size_t mini_total = 2 * size_t(log2Arity(max_arity));
    while (workers.size() < size_t(threads)) {
        workers.emplace_back();
        Worker &w = workers.back();
        w.mainPrg = crypto::makeTreeExpander(config.prg, max_arity);
        w.miniPrg = crypto::makeTreeExpander(config.prg, 2);
    }
    for (Worker &w : workers) {
        w.miniLeavesAll.resize(std::max<size_t>(shape.sumsPerTree, 1));
        w.hashPads.resize(std::max<size_t>(shape.sumsPerTree, 1));
        if (for_sender) {
            w.levelSums.resize(shape.layout.total);
            w.miniSums.resize(std::max<size_t>(mini_total, 1));
        } else {
            w.knownSums.resize(shape.layout.total);
        }
        w.ggm.reserve(shape.leaves, max_arity);
        w.miniGgm.reserve(max_arity, 2);
    }

    ready = true;
    preparedTrees = num_trees;
    preparedThreads = int(workers.size());
    (for_sender ? senderReady : receiverReady) = true;
}

uint64_t
SpcotWorkspace::prgOps() const
{
    uint64_t total = 0;
    for (const Worker &w : workers)
        total += w.mainPrg->ops() + w.miniPrg->ops();
    return total;
}

void
spcotSendTranscript(net::Channel &ch, const SpcotConfig &cfg,
                    size_t num_trees, const Block &delta, const Block *q,
                    Rng &rng, uint64_t &tweak, common::ThreadPool *pool,
                    SpcotWorkspace &ws, Block *w, uint64_t *prg_ops)
{
    ws.prepare(cfg, num_trees, pool ? pool->threads() : 1,
               /*for_sender=*/true);
    const SpcotShape &sh = ws.shape;
    const size_t num_levels = sh.arities.size();
    const size_t n_inst = num_trees * sh.cotsPerTree;
    const uint64_t sum_base = tweak + n_inst;

    // Seeds are drawn sequentially (tree seed, then that tree's mini
    // seeds in level order) so the transcript is independent of the
    // worker count.
    for (size_t tr = 0; tr < num_trees; ++tr) {
        ws.seeds[tr] = rng.nextBlock();
        for (size_t lvl = 0; lvl < num_levels; ++lvl)
            if (sh.miniIndex[lvl] >= 0)
                ws.miniSeeds[tr * sh.wideLevels +
                             size_t(sh.miniIndex[lvl])] = rng.nextBlock();
    }

    const uint64_t ops_before = ws.prgOps();

    auto expand_range = [&](int worker, size_t lo, size_t hi) {
        SpcotWorkspace::Worker &wk = ws.workers[worker];
        for (size_t tr = lo; tr < hi; ++tr) {
            Block *leaves = w + tr * sh.leaves;
            Block leaf_sum;
            ggmExpandInto(*wk.mainPrg, ws.seeds[tr], sh.layout, wk.ggm,
                          leaves, wk.levelSums.data(), &leaf_sum);

            const size_t inst_base = tr * sh.cotsPerTree;
            const size_t extra_base = tr * sh.extraPerTree;
            for (size_t lvl = 0; lvl < num_levels; ++lvl) {
                const unsigned m = sh.arities[lvl];
                const Block *sums =
                    wk.levelSums.data() + sh.layout.offset[lvl];
                const size_t inst = inst_base + sh.instOffset[lvl];
                if (m == 2) {
                    ws.otM0[inst] = sums[0];
                    ws.otM1[inst] = sums[1];
                    continue;
                }

                // (m-1)-out-of-m OT from an m-leaf binary mini GGM
                // tree: the mini level sums ride the chosen OTs, the
                // mini leaves pad the real sums. The leaves land in
                // this tree's contiguous mini-leaf span so one batch
                // hash below covers every wide level.
                const GgmSumLayout &ml = sh.miniLayout[lvl];
                Block mini_leaf_sum;
                ggmExpandInto(*wk.miniPrg,
                              ws.miniSeeds[tr * sh.wideLevels +
                                           size_t(sh.miniIndex[lvl])],
                              ml, wk.miniGgm,
                              wk.miniLeavesAll.data() + sh.sumOffset[lvl],
                              wk.miniSums.data(), &mini_leaf_sum);
                for (size_t j = 0; j < ml.arities.size(); ++j) {
                    ws.otM0[inst + j] = wk.miniSums[ml.offset[j] + 0];
                    ws.otM1[inst + j] = wk.miniSums[ml.offset[j] + 1];
                }
            }

            // One fused batch hash per tree: the sumsPerTree mini
            // leaves use the contiguous tweak range starting at
            // sum_base + tr*sumsPerTree.
            if (sh.sumsPerTree > 0) {
                ws.crhf.hashBatch(wk.miniLeavesAll.data(),
                                  wk.hashPads.data(), sh.sumsPerTree,
                                  sum_base + tr * sh.sumsPerTree);
                Block *ex = ws.extra.data() + extra_base;
                for (size_t lvl = 0; lvl < num_levels; ++lvl) {
                    const unsigned m = sh.arities[lvl];
                    if (m == 2)
                        continue;
                    const Block *sums =
                        wk.levelSums.data() + sh.layout.offset[lvl];
                    const uint32_t so = sh.sumOffset[lvl];
                    for (unsigned c = 0; c < m; ++c)
                        ex[so + c] = sums[c] ^ wk.hashPads[so + c];
                }
            }

            // Final node recovery: Delta ^ XOR of all leaves (step 4
            // of Fig. 3(b)).
            ws.extra[extra_base + sh.extraPerTree - 1] =
                leaf_sum ^ delta;
        }
    };

    if (pool)
        pool->parallelFor(num_trees, expand_range);
    else
        expand_range(0, 0, num_trees);

    if (prg_ops)
        *prg_ops = ws.prgOps() - ops_before;

    chosenOtSend(ch, ws.crhf, ws.otM0.data(), ws.otM1.data(), n_inst,
                 delta, q, tweak, ws.ot);
    ch.sendBlocks(ws.extra.data(), num_trees * sh.extraPerTree);

    tweak = sum_base + num_trees * sh.sumsPerTree;
}

void
spcotSendInto(net::Channel &ch, const SpcotConfig &cfg, size_t num_trees,
              const Block &delta, const Block *q, Rng &rng,
              uint64_t &tweak, common::ThreadPool &pool,
              SpcotWorkspace &ws, Block *w, uint64_t *prg_ops)
{
    spcotSendTranscript(ch, cfg, num_trees, delta, q, rng, tweak, &pool,
                        ws, w, prg_ops);
}

void
spcotRecvSendChoices(net::Channel &ch, const SpcotConfig &cfg,
                     size_t num_trees, const size_t *alphas,
                     const BitVec &b, size_t b_offset, uint64_t &tweak,
                     SpcotWorkspace &ws, SpcotRecvSlot &slot)
{
    const SpcotShape &sh = ws.shape;
    IRONMAN_CHECK(sh.cfg == cfg, "workspace prepared for other config");
    const size_t num_levels = sh.arities.size();
    const size_t n_inst = num_trees * sh.cotsPerTree;

    slot.tweakBase = tweak;
    slot.sumBase = tweak + n_inst;
    tweak = slot.sumBase + num_trees * sh.sumsPerTree;

    slot.alphas.assign(alphas, alphas + num_trees);
    slot.digits.resize(num_trees * num_levels);
    slot.choices.resize(n_inst);

    // Choice bits in traversal order: !digit for arity-2 levels,
    // !digit-bit for each mini level of wider ones.
    for (size_t tr = 0; tr < num_trees; ++tr) {
        unsigned *dg = slot.digits.data() + tr * num_levels;
        alphaDigitsInto(alphas[tr], sh.arities, dg);
        const size_t inst_base = tr * sh.cotsPerTree;
        for (size_t lvl = 0; lvl < num_levels; ++lvl) {
            const unsigned m = sh.arities[lvl];
            const unsigned digit = dg[lvl];
            const size_t inst = inst_base + sh.instOffset[lvl];
            if (m == 2) {
                slot.choices.set(inst, !(digit & 1));
            } else {
                const unsigned bits = log2Arity(m);
                for (unsigned j = 0; j < bits; ++j)
                    slot.choices.set(inst + j,
                                     !((digit >> (bits - 1 - j)) & 1));
            }
        }
    }

    // Derandomization bits out (the wire half of the chosen OT that
    // needs only base-COT choice BITS, never strings).
    chosenOtRecvSendDerand(ch, slot.choices, b, b_offset, n_inst,
                           slot.ot);
}

void
spcotRecvRecvTranscript(net::Channel &ch, const SpcotConfig &cfg,
                        size_t num_trees, SpcotWorkspace &ws,
                        SpcotRecvSlot &slot)
{
    const SpcotShape &sh = ws.shape;
    IRONMAN_CHECK(sh.cfg == cfg, "workspace prepared for other config");
    const size_t n_inst = num_trees * sh.cotsPerTree;

    chosenOtRecvCiphertexts(ch, n_inst, slot.ot);

    slot.extra.resize(num_trees * sh.extraPerTree);
    ch.recvBlocks(slot.extra.data(), num_trees * sh.extraPerTree);
}

void
spcotRecvFinish(const SpcotConfig &cfg, size_t num_trees, const Block *t,
                common::ThreadPool &pool, SpcotWorkspace &ws,
                SpcotRecvSlot &slot, Block *v, uint64_t *prg_ops)
{
    const SpcotShape &sh = ws.shape;
    IRONMAN_CHECK(sh.cfg == cfg, "workspace prepared for other config");
    const size_t num_levels = sh.arities.size();
    const size_t n_inst = num_trees * sh.cotsPerTree;

    // Unmask the chosen-OT outputs with the base-COT strings (one
    // batched hash — the strings are contiguous).
    chosenOtRecvFinish(ws.crhf, slot.choices, t, n_inst, ws.otOut.data(),
                       slot.tweakBase, slot.ot);

    const uint64_t ops_before = ws.prgOps();

    pool.parallelFor(num_trees, [&](int worker, size_t lo, size_t hi) {
        SpcotWorkspace::Worker &wk = ws.workers[worker];
        for (size_t tr = lo; tr < hi; ++tr) {
            const unsigned *dg = slot.digits.data() + tr * num_levels;
            const size_t inst_base = tr * sh.cotsPerTree;
            const size_t extra_base = tr * sh.extraPerTree;

            // Pass 1: reconstruct every wide level's mini tree into
            // the tree's contiguous mini-leaf span, and fill the
            // binary levels' known sums directly.
            for (size_t lvl = 0; lvl < num_levels; ++lvl) {
                const unsigned m = sh.arities[lvl];
                const unsigned digit = dg[lvl];
                const size_t inst = inst_base + sh.instOffset[lvl];
                Block *ks = wk.knownSums.data() + sh.layout.offset[lvl];

                if (m == 2) {
                    ks[digit] = Block::zero();
                    ks[digit ^ 1] = ws.otOut[inst];
                    continue;
                }

                const GgmSumLayout &ml = sh.miniLayout[lvl];
                const unsigned bits = log2Arity(m);
                for (unsigned j = 0; j < bits; ++j) {
                    const unsigned bit = (digit >> (bits - 1 - j)) & 1;
                    wk.hashPads[ml.offset[j] + bit] = Block::zero();
                    wk.hashPads[ml.offset[j] + (bit ^ 1)] =
                        ws.otOut[inst + j];
                }
                ggmReconstructInto(*wk.miniPrg, digit, ml,
                                   wk.hashPads.data(), wk.miniGgm,
                                   wk.miniLeavesAll.data() +
                                       sh.sumOffset[lvl]);
            }

            // Pass 2: one fused batch hash over the tree's mini
            // leaves, then unmask the real sums (the pad at the
            // punctured digit hashes an unknown zero leaf and is
            // skipped).
            if (sh.sumsPerTree > 0) {
                ws.crhf.hashBatch(wk.miniLeavesAll.data(),
                                  wk.hashPads.data(), sh.sumsPerTree,
                                  slot.sumBase + tr * sh.sumsPerTree);
                const Block *ex = slot.extra.data() + extra_base;
                for (size_t lvl = 0; lvl < num_levels; ++lvl) {
                    const unsigned m = sh.arities[lvl];
                    if (m == 2)
                        continue;
                    const unsigned digit = dg[lvl];
                    const uint32_t so = sh.sumOffset[lvl];
                    Block *ks =
                        wk.knownSums.data() + sh.layout.offset[lvl];
                    for (unsigned c = 0; c < m; ++c)
                        ks[c] = c == digit
                                    ? Block::zero() // r_digit unknown
                                    : ex[so + c] ^ wk.hashPads[so + c];
                }
            }

            Block *leaves = v + tr * sh.leaves;
            ggmReconstructInto(*wk.mainPrg, slot.alphas[tr], sh.layout,
                               wk.knownSums.data(), wk.ggm, leaves);

            // Final node recovery: v_alpha = (Delta ^ sum of all w) ^
            // (sum of the leaves we know) = w_alpha ^ Delta.
            Block known_sum = Block::zero();
            for (size_t j = 0; j < sh.leaves; ++j)
                known_sum ^= leaves[j];
            leaves[slot.alphas[tr]] =
                slot.extra[extra_base + sh.extraPerTree - 1] ^ known_sum;
        }
    });

    if (prg_ops)
        *prg_ops = ws.prgOps() - ops_before;
}

void
spcotRecvInto(net::Channel &ch, const SpcotConfig &cfg, size_t num_trees,
              const size_t *alphas, const BitVec &b, size_t b_offset,
              const Block *t, uint64_t &tweak, common::ThreadPool &pool,
              SpcotWorkspace &ws, Block *v, uint64_t *prg_ops)
{
    ws.prepare(cfg, num_trees, pool.threads(), /*for_sender=*/false);
    SpcotRecvSlot &slot = ws.slots[0];
    spcotRecvSendChoices(ch, cfg, num_trees, alphas, b, b_offset, tweak,
                         ws, slot);
    spcotRecvRecvTranscript(ch, cfg, num_trees, ws, slot);
    spcotRecvFinish(cfg, num_trees, t, pool, ws, slot, v, prg_ops);
}

} // namespace ironman::ot
