#include "ot/spcot.h"

#include <algorithm>
#include <bit>

#include "common/logging.h"

namespace ironman::ot {

std::vector<unsigned>
SpcotConfig::levelArities() const
{
    return treeArities(numLeaves, arity);
}

size_t
SpcotConfig::cotsPerTree() const
{
    return std::countr_zero(numLeaves);
}

namespace {

/** log2 of a power-of-two arity. */
unsigned
log2Arity(unsigned m)
{
    return std::countr_zero(m);
}

} // namespace

void
SpcotShape::prepare(const SpcotConfig &config)
{
    cfg = config;
    arities = treeArities(config.numLeaves, config.arity);
    layout = GgmSumLayout::of(arities);
    leaves = layout.leaves;

    const size_t num_levels = arities.size();
    instOffset.assign(num_levels, 0);
    sumOffset.assign(num_levels, 0);
    miniIndex.assign(num_levels, -1);
    miniLayout.assign(num_levels, GgmSumLayout{});
    cotsPerTree = 0;
    sumsPerTree = 0;
    wideLevels = 0;

    for (size_t lvl = 0; lvl < num_levels; ++lvl) {
        instOffset[lvl] = uint32_t(cotsPerTree);
        sumOffset[lvl] = uint32_t(sumsPerTree);
        const unsigned m = arities[lvl];
        if (m == 2) {
            cotsPerTree += 1;
        } else {
            cotsPerTree += log2Arity(m);
            sumsPerTree += m;
            miniIndex[lvl] = int(wideLevels++);
            miniLayout[lvl] = GgmSumLayout::of(treeArities(m, 2));
        }
    }
    extraPerTree = sumsPerTree + 1; // + the final recovery block
    IRONMAN_CHECK(cotsPerTree == cfg.cotsPerTree());
}

void
SpcotWorkspace::prepare(const SpcotConfig &config, size_t num_trees,
                        int threads, bool for_sender)
{
    const bool same_cfg = ready && shape.cfg == config;
    const bool same_size = same_cfg && preparedTrees == num_trees;
    if (same_size && preparedThreads >= threads &&
        (for_sender ? senderReady : receiverReady))
        return;

    if (!same_cfg) {
        shape.prepare(config);
        workers.clear(); // expanders are bound to (prg, arity)
        preparedThreads = 0;
    }
    if (!same_size)
        senderReady = receiverReady = false;

    // The requested role's buffer set — an engine only ever plays one
    // role, so the other set stays unallocated. (Receiver transcript
    // slots grow lazily inside the stage functions.)
    const size_t n_inst = num_trees * shape.cotsPerTree;
    if (for_sender) {
        extra.resize(num_trees * shape.extraPerTree);
        seeds.resize(num_trees);
        miniSeeds.resize(num_trees * shape.wideLevels);
        otM0.resize(n_inst);
        otM1.resize(n_inst);
    } else {
        otOut.resize(n_inst);
    }

    const unsigned max_arity =
        std::max(2u, *std::max_element(shape.arities.begin(),
                                       shape.arities.end()));
    const size_t mini_total = 2 * size_t(log2Arity(max_arity));
    const size_t chunk =
        std::min<size_t>(kBatchTrees, std::max<size_t>(num_trees, 1));
    while (workers.size() < size_t(threads)) {
        workers.emplace_back();
        Worker &w = workers.back();
        w.mainPrg = crypto::makeTreeExpander(config.prg, max_arity);
        w.miniPrg = crypto::makeTreeExpander(config.prg, 2);
    }
    for (Worker &w : workers) {
        w.miniLeavesAll.resize(
            std::max<size_t>(chunk * shape.sumsPerTree, 1));
        w.hashPads.resize(
            std::max<size_t>(chunk * shape.sumsPerTree, 1));
        if (for_sender) {
            w.levelSums.resize(chunk * shape.layout.total);
            w.leafSums.resize(chunk);
            w.miniSums.resize(std::max<size_t>(chunk * mini_total, 1));
            w.miniSeedStage.resize(chunk);
        } else {
            w.knownSums.resize(chunk * shape.layout.total);
            w.miniKnown.resize(std::max<size_t>(chunk * mini_total, 1));
            w.miniAlphaStage.resize(chunk);
        }
        w.batch.reserve(chunk, shape.layout, /*staged_leaves=*/false);
        for (size_t lvl = 0; lvl < shape.arities.size(); ++lvl)
            if (shape.miniIndex[lvl] >= 0)
                w.miniBatch.reserve(chunk, shape.miniLayout[lvl],
                                    /*staged_leaves=*/true);
    }

    ready = true;
    preparedTrees = num_trees;
    preparedThreads = int(workers.size());
    (for_sender ? senderReady : receiverReady) = true;
}

uint64_t
SpcotWorkspace::prgOps() const
{
    uint64_t total = 0;
    for (const Worker &w : workers)
        total += w.mainPrg->ops() + w.miniPrg->ops();
    return total;
}

void
spcotSendTranscript(net::Channel &ch, const SpcotConfig &cfg,
                    size_t num_trees, const Block &delta, const Block *q,
                    Rng &rng, uint64_t &tweak, common::ThreadPool *pool,
                    SpcotWorkspace &ws, Block *w, uint64_t *prg_ops)
{
    ws.prepare(cfg, num_trees, pool ? pool->threads() : 1,
               /*for_sender=*/true);
    const SpcotShape &sh = ws.shape;
    const size_t num_levels = sh.arities.size();
    const size_t n_inst = num_trees * sh.cotsPerTree;
    const uint64_t sum_base = tweak + n_inst;

    // Seeds are drawn sequentially (tree seed, then that tree's mini
    // seeds in level order) so the transcript is independent of the
    // worker count.
    for (size_t tr = 0; tr < num_trees; ++tr) {
        ws.seeds[tr] = rng.nextBlock();
        for (size_t lvl = 0; lvl < num_levels; ++lvl)
            if (sh.miniIndex[lvl] >= 0)
                ws.miniSeeds[tr * sh.wideLevels +
                             size_t(sh.miniIndex[lvl])] = rng.nextBlock();
    }

    const uint64_t ops_before = ws.prgOps();

    auto expand_range = [&](int worker, size_t lo, size_t hi) {
        SpcotWorkspace::Worker &wk = ws.workers[worker];
        for (size_t batch_base = lo; batch_base < hi;
             batch_base += SpcotWorkspace::kBatchTrees) {
            const size_t cnt = std::min(SpcotWorkspace::kBatchTrees,
                                        hi - batch_base);

            // All main trees of this chunk expand level-synchronously:
            // ONE expander call per level, the final level writing
            // straight into each tree's slot of the leaf span.
            ggmExpandBatchInto(*wk.mainPrg, ws.seeds.data() + batch_base,
                               cnt, sh.layout, wk.batch,
                               w + batch_base * sh.leaves, sh.leaves,
                               wk.levelSums.data(), sh.layout.total,
                               wk.leafSums.data());

            // (m-1)-out-of-m OTs of the wide levels, from m-leaf
            // binary mini GGM trees (Sec. 4.2): one cross-tree batch
            // per level. The mini level sums ride the chosen OTs; the
            // mini leaves land in each tree's contiguous span of
            // miniLeavesAll so one batch hash below covers the whole
            // chunk.
            for (size_t lvl = 0; lvl < num_levels; ++lvl) {
                if (sh.miniIndex[lvl] < 0)
                    continue;
                const GgmSumLayout &ml = sh.miniLayout[lvl];
                for (size_t i = 0; i < cnt; ++i)
                    wk.miniSeedStage[i] =
                        ws.miniSeeds[(batch_base + i) * sh.wideLevels +
                                     size_t(sh.miniIndex[lvl])];
                ggmExpandBatchInto(
                    *wk.miniPrg, wk.miniSeedStage.data(), cnt, ml,
                    wk.miniBatch,
                    wk.miniLeavesAll.data() + sh.sumOffset[lvl],
                    sh.sumsPerTree, wk.miniSums.data(), ml.total,
                    nullptr);
                for (size_t i = 0; i < cnt; ++i) {
                    const size_t inst = (batch_base + i) * sh.cotsPerTree +
                                        sh.instOffset[lvl];
                    const Block *msums = wk.miniSums.data() + i * ml.total;
                    for (size_t j = 0; j < ml.arities.size(); ++j) {
                        ws.otM0[inst + j] = msums[ml.offset[j] + 0];
                        ws.otM1[inst + j] = msums[ml.offset[j] + 1];
                    }
                }
            }

            // One fused batch hash for the whole chunk: tree tr's
            // sumsPerTree mini leaves use the contiguous tweak range
            // starting at sum_base + tr*sumsPerTree, and chunk trees
            // are contiguous.
            if (sh.sumsPerTree > 0)
                ws.crhf.hashBatch(wk.miniLeavesAll.data(),
                                  wk.hashPads.data(),
                                  cnt * sh.sumsPerTree,
                                  sum_base + batch_base * sh.sumsPerTree);

            for (size_t i = 0; i < cnt; ++i) {
                const size_t tr = batch_base + i;
                const size_t inst_base = tr * sh.cotsPerTree;
                Block *ex = ws.extra.data() + tr * sh.extraPerTree;
                const Block *lsums =
                    wk.levelSums.data() + i * sh.layout.total;
                const Block *pads =
                    wk.hashPads.data() + i * sh.sumsPerTree;
                for (size_t lvl = 0; lvl < num_levels; ++lvl) {
                    const unsigned m = sh.arities[lvl];
                    const Block *sums = lsums + sh.layout.offset[lvl];
                    if (m == 2) {
                        const size_t inst =
                            inst_base + sh.instOffset[lvl];
                        ws.otM0[inst] = sums[0];
                        ws.otM1[inst] = sums[1];
                        continue;
                    }
                    const uint32_t so = sh.sumOffset[lvl];
                    for (unsigned c = 0; c < m; ++c)
                        ex[so + c] = sums[c] ^ pads[so + c];
                }

                // Final node recovery: Delta ^ XOR of all leaves
                // (step 4 of Fig. 3(b)).
                ex[sh.extraPerTree - 1] = wk.leafSums[i] ^ delta;
            }
        }
    };

    if (pool)
        pool->parallelFor(num_trees, expand_range);
    else
        expand_range(0, 0, num_trees);

    if (prg_ops)
        *prg_ops = ws.prgOps() - ops_before;

    chosenOtSend(ch, ws.crhf, ws.otM0.data(), ws.otM1.data(), n_inst,
                 delta, q, tweak, ws.ot);
    ch.sendBlocks(ws.extra.data(), num_trees * sh.extraPerTree);

    tweak = sum_base + num_trees * sh.sumsPerTree;
}

void
spcotSendInto(net::Channel &ch, const SpcotConfig &cfg, size_t num_trees,
              const Block &delta, const Block *q, Rng &rng,
              uint64_t &tweak, common::ThreadPool &pool,
              SpcotWorkspace &ws, Block *w, uint64_t *prg_ops)
{
    spcotSendTranscript(ch, cfg, num_trees, delta, q, rng, tweak, &pool,
                        ws, w, prg_ops);
}

void
spcotRecvSendChoices(net::Channel &ch, const SpcotConfig &cfg,
                     size_t num_trees, const size_t *alphas,
                     const BitVec &b, size_t b_offset, uint64_t &tweak,
                     SpcotWorkspace &ws, SpcotRecvSlot &slot)
{
    const SpcotShape &sh = ws.shape;
    IRONMAN_CHECK(sh.cfg == cfg, "workspace prepared for other config");
    const size_t num_levels = sh.arities.size();
    const size_t n_inst = num_trees * sh.cotsPerTree;

    slot.tweakBase = tweak;
    slot.sumBase = tweak + n_inst;
    tweak = slot.sumBase + num_trees * sh.sumsPerTree;

    slot.alphas.assign(alphas, alphas + num_trees);
    slot.digits.resize(num_trees * num_levels);
    slot.choices.resize(n_inst);

    // Choice bits in traversal order: !digit for arity-2 levels,
    // !digit-bit for each mini level of wider ones.
    for (size_t tr = 0; tr < num_trees; ++tr) {
        unsigned *dg = slot.digits.data() + tr * num_levels;
        alphaDigitsInto(alphas[tr], sh.arities, dg);
        const size_t inst_base = tr * sh.cotsPerTree;
        for (size_t lvl = 0; lvl < num_levels; ++lvl) {
            const unsigned m = sh.arities[lvl];
            const unsigned digit = dg[lvl];
            const size_t inst = inst_base + sh.instOffset[lvl];
            if (m == 2) {
                slot.choices.set(inst, !(digit & 1));
            } else {
                const unsigned bits = log2Arity(m);
                for (unsigned j = 0; j < bits; ++j)
                    slot.choices.set(inst + j,
                                     !((digit >> (bits - 1 - j)) & 1));
            }
        }
    }

    // Derandomization bits out (the wire half of the chosen OT that
    // needs only base-COT choice BITS, never strings).
    chosenOtRecvSendDerand(ch, slot.choices, b, b_offset, n_inst,
                           slot.ot);
}

void
spcotRecvRecvTranscript(net::Channel &ch, const SpcotConfig &cfg,
                        size_t num_trees, SpcotWorkspace &ws,
                        SpcotRecvSlot &slot)
{
    const SpcotShape &sh = ws.shape;
    IRONMAN_CHECK(sh.cfg == cfg, "workspace prepared for other config");
    const size_t n_inst = num_trees * sh.cotsPerTree;

    chosenOtRecvCiphertexts(ch, n_inst, slot.ot);

    slot.extra.resize(num_trees * sh.extraPerTree);
    ch.recvBlocks(slot.extra.data(), num_trees * sh.extraPerTree);
}

void
spcotRecvFinish(const SpcotConfig &cfg, size_t num_trees, const Block *t,
                common::ThreadPool &pool, SpcotWorkspace &ws,
                SpcotRecvSlot &slot, Block *v, uint64_t *prg_ops)
{
    const SpcotShape &sh = ws.shape;
    IRONMAN_CHECK(sh.cfg == cfg, "workspace prepared for other config");
    const size_t num_levels = sh.arities.size();
    const size_t n_inst = num_trees * sh.cotsPerTree;

    // Unmask the chosen-OT outputs with the base-COT strings (one
    // batched hash — the strings are contiguous).
    chosenOtRecvFinish(ws.crhf, slot.choices, t, n_inst, ws.otOut.data(),
                       slot.tweakBase, slot.ot);

    const uint64_t ops_before = ws.prgOps();

    pool.parallelFor(num_trees, [&](int worker, size_t lo, size_t hi) {
        SpcotWorkspace::Worker &wk = ws.workers[worker];
        for (size_t batch_base = lo; batch_base < hi;
             batch_base += SpcotWorkspace::kBatchTrees) {
            const size_t cnt = std::min(SpcotWorkspace::kBatchTrees,
                                        hi - batch_base);

            // Pass 1a: binary levels' known sums straight from the
            // chosen-OT outputs.
            for (size_t i = 0; i < cnt; ++i) {
                const size_t tr = batch_base + i;
                const unsigned *dg = slot.digits.data() + tr * num_levels;
                const size_t inst_base = tr * sh.cotsPerTree;
                Block *ks = wk.knownSums.data() + i * sh.layout.total;
                for (size_t lvl = 0; lvl < num_levels; ++lvl) {
                    if (sh.arities[lvl] != 2)
                        continue;
                    const unsigned digit = dg[lvl];
                    Block *lk = ks + sh.layout.offset[lvl];
                    lk[digit] = Block::zero();
                    lk[digit ^ 1] =
                        ws.otOut[inst_base + sh.instOffset[lvl]];
                }
            }

            // Pass 1b: every wide level's mini trees reconstruct
            // cross-tree-batched (one expander call per mini level per
            // chunk) into each tree's contiguous mini-leaf span.
            for (size_t lvl = 0; lvl < num_levels; ++lvl) {
                if (sh.miniIndex[lvl] < 0)
                    continue;
                const GgmSumLayout &ml = sh.miniLayout[lvl];
                const unsigned bits = log2Arity(sh.arities[lvl]);
                for (size_t i = 0; i < cnt; ++i) {
                    const size_t tr = batch_base + i;
                    const unsigned digit =
                        slot.digits[tr * num_levels + lvl];
                    const size_t inst =
                        tr * sh.cotsPerTree + sh.instOffset[lvl];
                    Block *mk = wk.miniKnown.data() + i * ml.total;
                    for (unsigned j = 0; j < bits; ++j) {
                        const unsigned bit =
                            (digit >> (bits - 1 - j)) & 1;
                        mk[ml.offset[j] + bit] = Block::zero();
                        mk[ml.offset[j] + (bit ^ 1)] = ws.otOut[inst + j];
                    }
                    wk.miniAlphaStage[i] = digit;
                }
                ggmReconstructBatchInto(
                    *wk.miniPrg, wk.miniAlphaStage.data(), cnt, ml,
                    wk.miniKnown.data(), ml.total, wk.miniBatch,
                    wk.miniLeavesAll.data() + sh.sumOffset[lvl],
                    sh.sumsPerTree);
            }

            // Pass 2: one fused batch hash over the chunk's mini
            // leaves (contiguous tweaks), then unmask the real sums
            // (the pad at the punctured digit hashes an unknown zero
            // leaf and is skipped).
            if (sh.sumsPerTree > 0) {
                ws.crhf.hashBatch(wk.miniLeavesAll.data(),
                                  wk.hashPads.data(),
                                  cnt * sh.sumsPerTree,
                                  slot.sumBase +
                                      batch_base * sh.sumsPerTree);
                for (size_t i = 0; i < cnt; ++i) {
                    const size_t tr = batch_base + i;
                    const unsigned *dg =
                        slot.digits.data() + tr * num_levels;
                    const Block *ex =
                        slot.extra.data() + tr * sh.extraPerTree;
                    const Block *pads =
                        wk.hashPads.data() + i * sh.sumsPerTree;
                    Block *ks =
                        wk.knownSums.data() + i * sh.layout.total;
                    for (size_t lvl = 0; lvl < num_levels; ++lvl) {
                        const unsigned m = sh.arities[lvl];
                        if (m == 2)
                            continue;
                        const unsigned digit = dg[lvl];
                        const uint32_t so = sh.sumOffset[lvl];
                        Block *lk = ks + sh.layout.offset[lvl];
                        for (unsigned c = 0; c < m; ++c)
                            lk[c] = c == digit
                                        ? Block::zero() // r_digit unknown
                                        : ex[so + c] ^ pads[so + c];
                    }
                }
            }

            // Pass 3: level-synchronous cross-tree reconstruction of
            // the chunk's main trees, straight into the leaf span.
            ggmReconstructBatchInto(*wk.mainPrg,
                                    slot.alphas.data() + batch_base, cnt,
                                    sh.layout, wk.knownSums.data(),
                                    sh.layout.total, wk.batch,
                                    v + batch_base * sh.leaves,
                                    sh.leaves);

            // Final node recovery: v_alpha = (Delta ^ sum of all w) ^
            // (sum of the leaves we know) = w_alpha ^ Delta.
            for (size_t i = 0; i < cnt; ++i) {
                const size_t tr = batch_base + i;
                Block *leaves = v + tr * sh.leaves;
                Block known_sum = Block::zero();
                for (size_t j = 0; j < sh.leaves; ++j)
                    known_sum ^= leaves[j];
                leaves[slot.alphas[tr]] =
                    slot.extra[tr * sh.extraPerTree + sh.extraPerTree -
                               1] ^
                    known_sum;
            }
        }
    });

    if (prg_ops)
        *prg_ops = ws.prgOps() - ops_before;
}

void
spcotRecvInto(net::Channel &ch, const SpcotConfig &cfg, size_t num_trees,
              const size_t *alphas, const BitVec &b, size_t b_offset,
              const Block *t, uint64_t &tweak, common::ThreadPool &pool,
              SpcotWorkspace &ws, Block *v, uint64_t *prg_ops)
{
    ws.prepare(cfg, num_trees, pool.threads(), /*for_sender=*/false);
    SpcotRecvSlot &slot = ws.slots[0];
    spcotRecvSendChoices(ch, cfg, num_trees, alphas, b, b_offset, tweak,
                         ws, slot);
    spcotRecvRecvTranscript(ch, cfg, num_trees, ws, slot);
    spcotRecvFinish(cfg, num_trees, t, pool, ws, slot, v, prg_ops);
}

} // namespace ironman::ot
