#include "ot/spcot.h"

#include <algorithm>
#include <bit>

#include "common/logging.h"

namespace ironman::ot {

std::vector<unsigned>
SpcotConfig::levelArities() const
{
    return treeArities(numLeaves, arity);
}

size_t
SpcotConfig::cotsPerTree() const
{
    return std::countr_zero(numLeaves);
}

namespace {

/** log2 of a power-of-two arity. */
unsigned
log2Arity(unsigned m)
{
    return std::countr_zero(m);
}

} // namespace

void
SpcotShape::prepare(const SpcotConfig &config)
{
    cfg = config;
    arities = treeArities(config.numLeaves, config.arity);
    layout = GgmSumLayout::of(arities);
    leaves = layout.leaves;

    const size_t num_levels = arities.size();
    instOffset.assign(num_levels, 0);
    sumOffset.assign(num_levels, 0);
    miniIndex.assign(num_levels, -1);
    miniLayout.assign(num_levels, GgmSumLayout{});
    cotsPerTree = 0;
    sumsPerTree = 0;
    wideLevels = 0;

    for (size_t lvl = 0; lvl < num_levels; ++lvl) {
        instOffset[lvl] = uint32_t(cotsPerTree);
        sumOffset[lvl] = uint32_t(sumsPerTree);
        const unsigned m = arities[lvl];
        if (m == 2) {
            cotsPerTree += 1;
        } else {
            cotsPerTree += log2Arity(m);
            sumsPerTree += m;
            miniIndex[lvl] = int(wideLevels++);
            miniLayout[lvl] = GgmSumLayout::of(treeArities(m, 2));
        }
    }
    extraPerTree = sumsPerTree + 1; // + the final recovery block
    IRONMAN_CHECK(cotsPerTree == cfg.cotsPerTree());
}

void
SpcotWorkspace::prepare(const SpcotConfig &config, size_t num_trees,
                        int threads, bool for_sender)
{
    const bool same_cfg = ready && shape.cfg == config;
    const bool same_size = same_cfg && preparedTrees == num_trees;
    if (same_size && preparedThreads >= threads &&
        (for_sender ? senderReady : receiverReady))
        return;

    if (!same_cfg) {
        shape.prepare(config);
        workers.clear(); // expanders are bound to (prg, arity)
        preparedThreads = 0;
    }
    if (!same_size)
        senderReady = receiverReady = false;

    // Shared buffers, then the requested role's set — an engine only
    // ever plays one role, so the other set stays unallocated.
    const size_t n_inst = num_trees * shape.cotsPerTree;
    extra.resize(num_trees * shape.extraPerTree);
    if (for_sender) {
        seeds.resize(num_trees);
        miniSeeds.resize(num_trees * shape.wideLevels);
        otM0.resize(n_inst);
        otM1.resize(n_inst);
    } else {
        otOut.resize(n_inst);
        digits.resize(num_trees * shape.arities.size());
    }

    const unsigned max_arity =
        std::max(2u, *std::max_element(shape.arities.begin(),
                                       shape.arities.end()));
    const size_t mini_total = 2 * size_t(log2Arity(max_arity));
    while (workers.size() < size_t(threads)) {
        workers.emplace_back();
        Worker &w = workers.back();
        w.mainPrg = crypto::makeTreeExpander(config.prg, max_arity);
        w.miniPrg = crypto::makeTreeExpander(config.prg, 2);
    }
    for (Worker &w : workers) {
        w.miniLeaves.resize(max_arity);
        if (for_sender) {
            w.levelSums.resize(shape.layout.total);
            w.miniSums.resize(std::max<size_t>(mini_total, 1));
        } else {
            w.knownSums.resize(shape.layout.total);
            w.miniKnown.resize(std::max<size_t>(mini_total, 1));
        }
        w.ggm.reserve(shape.leaves, max_arity);
        w.miniGgm.reserve(max_arity, 2);
    }

    ready = true;
    preparedTrees = num_trees;
    preparedThreads = int(workers.size());
    (for_sender ? senderReady : receiverReady) = true;
}

uint64_t
SpcotWorkspace::prgOps() const
{
    uint64_t total = 0;
    for (const Worker &w : workers)
        total += w.mainPrg->ops() + w.miniPrg->ops();
    return total;
}

void
spcotSendInto(net::Channel &ch, const SpcotConfig &cfg, size_t num_trees,
              const Block &delta, const Block *q, Rng &rng,
              uint64_t &tweak, common::ThreadPool &pool,
              SpcotWorkspace &ws, Block *w, uint64_t *prg_ops)
{
    ws.prepare(cfg, num_trees, pool.threads(), /*for_sender=*/true);
    const SpcotShape &sh = ws.shape;
    const size_t num_levels = sh.arities.size();
    const size_t n_inst = num_trees * sh.cotsPerTree;
    const uint64_t sum_base = tweak + n_inst;

    // Seeds are drawn sequentially (tree seed, then that tree's mini
    // seeds in level order) so the transcript is independent of the
    // worker count.
    for (size_t tr = 0; tr < num_trees; ++tr) {
        ws.seeds[tr] = rng.nextBlock();
        for (size_t lvl = 0; lvl < num_levels; ++lvl)
            if (sh.miniIndex[lvl] >= 0)
                ws.miniSeeds[tr * sh.wideLevels +
                             size_t(sh.miniIndex[lvl])] = rng.nextBlock();
    }

    const uint64_t ops_before = ws.prgOps();

    pool.parallelFor(num_trees, [&](int worker, size_t lo, size_t hi) {
        SpcotWorkspace::Worker &wk = ws.workers[worker];
        for (size_t tr = lo; tr < hi; ++tr) {
            Block *leaves = w + tr * sh.leaves;
            Block leaf_sum;
            ggmExpandInto(*wk.mainPrg, ws.seeds[tr], sh.layout, wk.ggm,
                          leaves, wk.levelSums.data(), &leaf_sum);

            const size_t inst_base = tr * sh.cotsPerTree;
            const size_t extra_base = tr * sh.extraPerTree;
            for (size_t lvl = 0; lvl < num_levels; ++lvl) {
                const unsigned m = sh.arities[lvl];
                const Block *sums =
                    wk.levelSums.data() + sh.layout.offset[lvl];
                const size_t inst = inst_base + sh.instOffset[lvl];
                if (m == 2) {
                    ws.otM0[inst] = sums[0];
                    ws.otM1[inst] = sums[1];
                    continue;
                }

                // (m-1)-out-of-m OT from an m-leaf binary mini GGM
                // tree: the mini level sums ride the chosen OTs, the
                // mini leaves pad the real sums.
                const GgmSumLayout &ml = sh.miniLayout[lvl];
                Block mini_leaf_sum;
                ggmExpandInto(*wk.miniPrg,
                              ws.miniSeeds[tr * sh.wideLevels +
                                           size_t(sh.miniIndex[lvl])],
                              ml, wk.miniGgm, wk.miniLeaves.data(),
                              wk.miniSums.data(), &mini_leaf_sum);
                for (size_t j = 0; j < ml.arities.size(); ++j) {
                    ws.otM0[inst + j] = wk.miniSums[ml.offset[j] + 0];
                    ws.otM1[inst + j] = wk.miniSums[ml.offset[j] + 1];
                }
                const uint64_t tweak0 =
                    sum_base + tr * sh.sumsPerTree + sh.sumOffset[lvl];
                Block *ex =
                    ws.extra.data() + extra_base + sh.sumOffset[lvl];
                for (unsigned c = 0; c < m; ++c)
                    ex[c] = sums[c] ^
                            ws.crhf.hash(wk.miniLeaves[c], tweak0 + c);
            }

            // Final node recovery: Delta ^ XOR of all leaves (step 4
            // of Fig. 3(b)).
            ws.extra[extra_base + sh.extraPerTree - 1] =
                leaf_sum ^ delta;
        }
    });

    if (prg_ops)
        *prg_ops = ws.prgOps() - ops_before;

    chosenOtSend(ch, ws.crhf, ws.otM0.data(), ws.otM1.data(), n_inst,
                 delta, q, tweak, ws.ot);
    ch.sendBlocks(ws.extra.data(), num_trees * sh.extraPerTree);

    tweak = sum_base + num_trees * sh.sumsPerTree;
}

void
spcotRecvInto(net::Channel &ch, const SpcotConfig &cfg, size_t num_trees,
              const size_t *alphas, const BitVec &b, size_t b_offset,
              const Block *t, uint64_t &tweak, common::ThreadPool &pool,
              SpcotWorkspace &ws, Block *v, uint64_t *prg_ops)
{
    ws.prepare(cfg, num_trees, pool.threads(), /*for_sender=*/false);
    const SpcotShape &sh = ws.shape;
    const size_t num_levels = sh.arities.size();
    const size_t n_inst = num_trees * sh.cotsPerTree;
    const uint64_t sum_base = tweak + n_inst;

    // Choice bits in traversal order: !digit for arity-2 levels,
    // !digit-bit for each mini level of wider ones.
    ws.choices.resize(n_inst);
    for (size_t tr = 0; tr < num_trees; ++tr) {
        unsigned *dg = ws.digits.data() + tr * num_levels;
        alphaDigitsInto(alphas[tr], sh.arities, dg);
        const size_t inst_base = tr * sh.cotsPerTree;
        for (size_t lvl = 0; lvl < num_levels; ++lvl) {
            const unsigned m = sh.arities[lvl];
            const unsigned digit = dg[lvl];
            const size_t inst = inst_base + sh.instOffset[lvl];
            if (m == 2) {
                ws.choices.set(inst, !(digit & 1));
            } else {
                const unsigned bits = log2Arity(m);
                for (unsigned j = 0; j < bits; ++j)
                    ws.choices.set(inst + j,
                                   !((digit >> (bits - 1 - j)) & 1));
            }
        }
    }

    chosenOtRecv(ch, ws.crhf, ws.choices, b, b_offset, t, n_inst,
                 ws.otOut.data(), tweak, ws.ot);
    ch.recvBlocks(ws.extra.data(), num_trees * sh.extraPerTree);

    const uint64_t ops_before = ws.prgOps();

    pool.parallelFor(num_trees, [&](int worker, size_t lo, size_t hi) {
        SpcotWorkspace::Worker &wk = ws.workers[worker];
        for (size_t tr = lo; tr < hi; ++tr) {
            const unsigned *dg = ws.digits.data() + tr * num_levels;
            const size_t inst_base = tr * sh.cotsPerTree;
            const size_t extra_base = tr * sh.extraPerTree;

            for (size_t lvl = 0; lvl < num_levels; ++lvl) {
                const unsigned m = sh.arities[lvl];
                const unsigned digit = dg[lvl];
                const size_t inst = inst_base + sh.instOffset[lvl];
                Block *ks = wk.knownSums.data() + sh.layout.offset[lvl];

                if (m == 2) {
                    ks[digit] = Block::zero();
                    ks[digit ^ 1] = ws.otOut[inst];
                    continue;
                }

                // Reconstruct the mini tree, then unmask the real
                // sums.
                const GgmSumLayout &ml = sh.miniLayout[lvl];
                const unsigned bits = log2Arity(m);
                for (unsigned j = 0; j < bits; ++j) {
                    const unsigned bit = (digit >> (bits - 1 - j)) & 1;
                    wk.miniKnown[ml.offset[j] + bit] = Block::zero();
                    wk.miniKnown[ml.offset[j] + (bit ^ 1)] =
                        ws.otOut[inst + j];
                }
                ggmReconstructInto(*wk.miniPrg, digit, ml,
                                   wk.miniKnown.data(), wk.miniGgm,
                                   wk.miniLeaves.data());
                const uint64_t tweak0 =
                    sum_base + tr * sh.sumsPerTree + sh.sumOffset[lvl];
                const Block *ex =
                    ws.extra.data() + extra_base + sh.sumOffset[lvl];
                for (unsigned c = 0; c < m; ++c)
                    ks[c] = c == digit
                                ? Block::zero() // r_digit unknown
                                : ex[c] ^ ws.crhf.hash(wk.miniLeaves[c],
                                                       tweak0 + c);
            }

            Block *leaves = v + tr * sh.leaves;
            ggmReconstructInto(*wk.mainPrg, alphas[tr], sh.layout,
                               wk.knownSums.data(), wk.ggm, leaves);

            // Final node recovery: v_alpha = (Delta ^ sum of all w) ^
            // (sum of the leaves we know) = w_alpha ^ Delta.
            Block known_sum = Block::zero();
            for (size_t j = 0; j < sh.leaves; ++j)
                known_sum ^= leaves[j];
            leaves[alphas[tr]] =
                ws.extra[extra_base + sh.extraPerTree - 1] ^ known_sum;
        }
    });

    if (prg_ops)
        *prg_ops = ws.prgOps() - ops_before;

    tweak = sum_base + num_trees * sh.sumsPerTree;
}

// ---------------------------------------------------------------------------
// Vector-returning compatibility wrappers
// ---------------------------------------------------------------------------

SpcotSenderOutput
spcotSend(net::Channel &ch, const SpcotConfig &cfg, size_t num_trees,
          const Block &delta, const Block *q, Rng &rng, uint64_t &tweak)
{
    common::ThreadPool pool(1);
    SpcotWorkspace ws;
    std::vector<Block> flat(num_trees * cfg.numLeaves);

    SpcotSenderOutput out;
    spcotSendInto(ch, cfg, num_trees, delta, q, rng, tweak, pool, ws,
                  flat.data(), &out.prgOps);

    out.w.resize(num_trees);
    for (size_t tr = 0; tr < num_trees; ++tr)
        out.w[tr].assign(flat.begin() + tr * cfg.numLeaves,
                         flat.begin() + (tr + 1) * cfg.numLeaves);
    return out;
}

SpcotReceiverOutput
spcotRecv(net::Channel &ch, const SpcotConfig &cfg, size_t num_trees,
          const std::vector<size_t> &alphas, const BitVec &b,
          size_t b_offset, const Block *t, uint64_t &tweak)
{
    IRONMAN_CHECK(alphas.size() == num_trees);
    common::ThreadPool pool(1);
    SpcotWorkspace ws;
    std::vector<Block> flat(num_trees * cfg.numLeaves);

    SpcotReceiverOutput out;
    spcotRecvInto(ch, cfg, num_trees, alphas.data(), b, b_offset, t,
                  tweak, pool, ws, flat.data(), &out.prgOps);

    out.alpha = alphas;
    out.v.resize(num_trees);
    for (size_t tr = 0; tr < num_trees; ++tr)
        out.v[tr].assign(flat.begin() + tr * cfg.numLeaves,
                         flat.begin() + (tr + 1) * cfg.numLeaves);
    return out;
}

} // namespace ironman::ot
