#include "ot/spcot.h"

#include <bit>

#include "common/logging.h"
#include "crypto/crhf.h"
#include "ot/chosen_ot.h"
#include "ot/ggm_tree.h"

namespace ironman::ot {

std::vector<unsigned>
SpcotConfig::levelArities() const
{
    return treeArities(numLeaves, arity);
}

size_t
SpcotConfig::cotsPerTree() const
{
    return std::countr_zero(numLeaves);
}

namespace {

/** log2 of a power-of-two arity. */
unsigned
log2Arity(unsigned m)
{
    return std::countr_zero(m);
}

} // namespace

SpcotSenderOutput
spcotSend(net::Channel &ch, const SpcotConfig &cfg, size_t num_trees,
          const Block &delta, const Block *q, Rng &rng, uint64_t &tweak)
{
    const auto arities = cfg.levelArities();
    crypto::TreePrg main_prg(cfg.prg, cfg.arity);
    crypto::TreePrg mini_prg(cfg.prg, 2);
    crypto::Crhf crhf;

    SpcotSenderOutput out;
    out.w.resize(num_trees);

    // OT instance messages, in traversal order.
    std::vector<Block> ot_m0, ot_m1;
    // Masked K sums for the (m-1)-of-m levels + final recovery blocks.
    std::vector<Block> extra;

    // Tweak layout: [tweak, +n_inst) pads the chosen OTs,
    // [tweak+n_inst, ...) pads the masked sums. Both parties derive
    // the same split, so reserve the OT range after counting.
    size_t n_inst = num_trees * cfg.cotsPerTree();
    uint64_t sum_tweak = tweak + n_inst;

    for (size_t tr = 0; tr < num_trees; ++tr) {
        Block seed = rng.nextBlock();
        GgmExpansion exp = ggmExpand(main_prg, seed, arities);

        for (size_t lvl = 0; lvl < arities.size(); ++lvl) {
            unsigned m = arities[lvl];
            const auto &sums = exp.levelSums[lvl];
            if (m == 2) {
                ot_m0.push_back(sums[0]);
                ot_m1.push_back(sums[1]);
                continue;
            }

            // (m-1)-out-of-m OT from an m-leaf binary mini GGM tree.
            Block mini_seed = rng.nextBlock();
            auto mini_arities = treeArities(m, 2);
            GgmExpansion mini = ggmExpand(mini_prg, mini_seed,
                                          mini_arities);
            for (size_t ml = 0; ml < mini_arities.size(); ++ml) {
                ot_m0.push_back(mini.levelSums[ml][0]);
                ot_m1.push_back(mini.levelSums[ml][1]);
            }
            for (unsigned c = 0; c < m; ++c)
                extra.push_back(sums[c] ^
                                crhf.hash(mini.leaves[c], sum_tweak++));
        }

        // Final node recovery: Delta ^ XOR of all leaves (step 4 of
        // Fig. 3(b)).
        extra.push_back(exp.leafSum ^ delta);
        out.w[tr] = std::move(exp.leaves);
    }

    IRONMAN_CHECK(ot_m0.size() == n_inst);
    chosenOtSend(ch, crhf, ot_m0.data(), ot_m1.data(), n_inst, delta, q,
                 tweak);
    ch.sendBlocks(extra.data(), extra.size());

    tweak = sum_tweak;
    out.prgOps = main_prg.ops() + mini_prg.ops();
    return out;
}

SpcotReceiverOutput
spcotRecv(net::Channel &ch, const SpcotConfig &cfg, size_t num_trees,
          const std::vector<size_t> &alphas, const BitVec &b,
          size_t b_offset, const Block *t, uint64_t &tweak)
{
    IRONMAN_CHECK(alphas.size() == num_trees);
    const auto arities = cfg.levelArities();
    crypto::TreePrg main_prg(cfg.prg, cfg.arity);
    crypto::TreePrg mini_prg(cfg.prg, 2);
    crypto::Crhf crhf;

    size_t n_inst = num_trees * cfg.cotsPerTree();
    uint64_t sum_tweak = tweak + n_inst;

    // Choice bits in traversal order: !digit for arity-2 levels,
    // !digit-bit for each mini level of wider ones.
    BitVec choices;
    size_t extra_blocks = 0;
    std::vector<std::vector<unsigned>> digits(num_trees);
    for (size_t tr = 0; tr < num_trees; ++tr) {
        digits[tr] = alphaDigits(alphas[tr], arities);
        for (size_t lvl = 0; lvl < arities.size(); ++lvl) {
            unsigned m = arities[lvl];
            unsigned digit = digits[tr][lvl];
            if (m == 2) {
                choices.pushBack(!(digit & 1));
            } else {
                unsigned bits = log2Arity(m);
                for (unsigned j = 0; j < bits; ++j) {
                    unsigned bit = (digit >> (bits - 1 - j)) & 1;
                    choices.pushBack(!bit);
                }
                extra_blocks += m;
            }
        }
        extra_blocks += 1; // final recovery block
    }
    IRONMAN_CHECK(choices.size() == n_inst);

    std::vector<Block> ot_out(n_inst);
    chosenOtRecv(ch, crhf, choices, b, b_offset, t, n_inst, ot_out.data(),
                 tweak);

    std::vector<Block> extra(extra_blocks);
    ch.recvBlocks(extra.data(), extra.size());

    SpcotReceiverOutput out;
    out.v.resize(num_trees);
    out.alpha = alphas;

    size_t inst = 0;
    size_t extra_pos = 0;
    for (size_t tr = 0; tr < num_trees; ++tr) {
        std::vector<std::vector<Block>> known(arities.size());
        for (size_t lvl = 0; lvl < arities.size(); ++lvl) {
            unsigned m = arities[lvl];
            unsigned digit = digits[tr][lvl];
            known[lvl].assign(m, Block::zero());

            if (m == 2) {
                known[lvl][digit ^ 1] = ot_out[inst++];
                continue;
            }

            // Reconstruct the mini tree, then unmask the real sums.
            unsigned bits = log2Arity(m);
            auto mini_arities = treeArities(m, 2);
            std::vector<std::vector<Block>> mini_known(bits);
            for (unsigned j = 0; j < bits; ++j) {
                unsigned bit = (digit >> (bits - 1 - j)) & 1;
                mini_known[j].assign(2, Block::zero());
                mini_known[j][bit ^ 1] = ot_out[inst++];
            }
            GgmReconstruction mini = ggmReconstruct(mini_prg, digit,
                                                    mini_arities,
                                                    mini_known);
            for (unsigned c = 0; c < m; ++c) {
                Block masked = extra[extra_pos++];
                uint64_t tw = sum_tweak++;
                if (c == digit)
                    continue; // r_digit unknown by design
                known[lvl][c] = masked ^ crhf.hash(mini.leaves[c], tw);
            }
        }

        GgmReconstruction rec = ggmReconstruct(main_prg, alphas[tr],
                                               arities, known);

        // Final node recovery: v_alpha = (Delta ^ sum of all w) ^
        // (sum of the leaves we know) = w_alpha ^ Delta.
        Block final_block = extra[extra_pos++];
        Block known_sum = Block::zero();
        for (const Block &leaf : rec.leaves)
            known_sum ^= leaf;
        rec.leaves[alphas[tr]] = final_block ^ known_sum;

        out.v[tr] = std::move(rec.leaves);
    }

    tweak = sum_tweak;
    out.prgOps = main_prg.ops() + mini_prg.ops();
    return out;
}

} // namespace ironman::ot
