#include "ot/ggm_tree.h"

#include <algorithm>
#include <bit>

#include "common/logging.h"

namespace ironman::ot {

std::vector<unsigned>
treeArities(size_t leaves, unsigned m)
{
    IRONMAN_CHECK(leaves >= 2 && std::has_single_bit(leaves),
                  "leaf count must be a power of two");
    IRONMAN_CHECK(m >= 2 && std::has_single_bit(uint64_t(m)),
                  "arity must be a power of two");

    unsigned total_bits = std::countr_zero(leaves);
    unsigned m_bits = std::countr_zero(uint64_t(m));

    std::vector<unsigned> arities;
    unsigned rem = total_bits % m_bits;
    if (rem)
        arities.push_back(1u << rem);
    for (unsigned i = 0; i < total_bits / m_bits; ++i)
        arities.push_back(m);
    return arities;
}

void
alphaDigitsInto(size_t alpha, const std::vector<unsigned> &arities,
                unsigned *digits)
{
    size_t leaves = 1;
    for (unsigned a : arities)
        leaves *= a;
    IRONMAN_CHECK(alpha < leaves);

    for (size_t i = arities.size(); i-- > 0;) {
        digits[i] = unsigned(alpha % arities[i]);
        alpha /= arities[i];
    }
}

std::vector<unsigned>
alphaDigits(size_t alpha, const std::vector<unsigned> &arities)
{
    std::vector<unsigned> digits(arities.size());
    alphaDigitsInto(alpha, arities, digits.data());
    return digits;
}

GgmSumLayout
GgmSumLayout::of(const std::vector<unsigned> &arities)
{
    GgmSumLayout layout;
    layout.arities = arities;
    layout.offset.reserve(arities.size());
    layout.leaves = 1;
    for (unsigned m : arities) {
        layout.offset.push_back(uint32_t(layout.total));
        layout.total += m;
        layout.leaves *= m;
    }
    return layout;
}

void
GgmScratch::reserve(size_t leaves, unsigned max_arity)
{
    // Intermediate levels hold at most leaves/2 nodes (the last level
    // is written straight into the caller's span), but reconstruction
    // packs up to a full level of children.
    if (ping.size() < leaves)
        ping.resize(leaves);
    if (pong.size() < leaves)
        pong.resize(leaves);
    if (parents.size() < leaves)
        parents.resize(leaves);
    if (children.size() < leaves)
        children.resize(leaves);
    if (acc.size() < max_arity)
        acc.resize(max_arity);
}

void
ggmExpandInto(crypto::SeedExpander &prg, const Block &seed,
              const GgmSumLayout &layout, GgmScratch &scratch,
              Block *leaves, Block *level_sums, Block *leaf_sum)
{
    const size_t num_levels = layout.arities.size();
    IRONMAN_CHECK(num_levels >= 1);
    unsigned max_arity = *std::max_element(layout.arities.begin(),
                                           layout.arities.end());
    scratch.reserve(layout.leaves, max_arity);

    Block *cur = scratch.ping.data();
    cur[0] = seed;
    size_t count = 1;

    for (size_t lvl = 0; lvl < num_levels; ++lvl) {
        const unsigned m = layout.arities[lvl];
        Block *next = lvl + 1 == num_levels
                          ? leaves
                          : (cur == scratch.ping.data()
                                 ? scratch.pong.data()
                                 : scratch.ping.data());
        prg.expand(cur, next, count, m);

        Block *sums = level_sums + layout.offset[lvl];
        std::fill(sums, sums + m, Block::zero());
        for (size_t j = 0; j < count; ++j)
            for (unsigned c = 0; c < m; ++c)
                sums[c] ^= next[j * m + c];

        cur = next;
        count *= m;
    }

    Block total = Block::zero();
    for (size_t j = 0; j < layout.leaves; ++j)
        total ^= leaves[j];
    *leaf_sum = total;
}

void
ggmReconstructInto(crypto::SeedExpander &prg, size_t alpha,
                   const GgmSumLayout &layout, const Block *known_sums,
                   GgmScratch &scratch, Block *leaves)
{
    const size_t num_levels = layout.arities.size();
    IRONMAN_CHECK(num_levels >= 1 && alpha < layout.leaves);
    constexpr size_t kMaxLevels = 64;
    IRONMAN_CHECK(num_levels <= kMaxLevels);
    unsigned digits[kMaxLevels];
    alphaDigitsInto(alpha, layout.arities, digits);
    unsigned max_arity = *std::max_element(layout.arities.begin(),
                                           layout.arities.end());
    scratch.reserve(layout.leaves, max_arity);

    // cur holds all nodes of the current level; the entry at the path
    // index `hole` is unknown (kept zero and never read as a parent).
    Block *cur = scratch.ping.data();
    cur[0] = Block::zero();
    size_t count = 1;
    size_t hole = 0;

    for (size_t lvl = 0; lvl < num_levels; ++lvl) {
        const unsigned m = layout.arities[lvl];
        const unsigned digit = digits[lvl];
        Block *next = lvl + 1 == num_levels
                          ? leaves
                          : (cur == scratch.ping.data()
                                 ? scratch.pong.data()
                                 : scratch.ping.data());

        // Expand every *known* parent (batched, skipping the hole);
        // accumulate per-slot sums over the children we just derived.
        Block *packed = scratch.parents.data();
        for (size_t j = 0; j < count; ++j)
            if (j != hole)
                *packed++ = cur[j];
        const size_t known = count - 1;
        prg.expand(scratch.parents.data(), scratch.children.data(),
                   known, m);

        Block *acc = scratch.acc.data();
        std::fill(acc, acc + m, Block::zero());
        size_t src = 0;
        for (size_t j = 0; j < count; ++j) {
            if (j == hole)
                continue;
            for (unsigned c = 0; c < m; ++c) {
                Block child = scratch.children[src * m + c];
                next[j * m + c] = child;
                acc[c] ^= child;
            }
            ++src;
        }

        // Recover the punctured parent's children at every slot except
        // the path digit: child = K_c ^ (sum of known slot-c children).
        const Block *sums = known_sums + layout.offset[lvl];
        for (unsigned c = 0; c < m; ++c)
            next[hole * m + c] =
                c == digit ? Block::zero() : sums[c] ^ acc[c];

        hole = hole * m + digit;
        cur = next;
        count *= m;
    }

    IRONMAN_CHECK(hole == alpha);
}

} // namespace ironman::ot
