#include "ot/ggm_tree.h"

#include <bit>

#include "common/logging.h"

namespace ironman::ot {

std::vector<unsigned>
treeArities(size_t leaves, unsigned m)
{
    IRONMAN_CHECK(leaves >= 2 && std::has_single_bit(leaves),
                  "leaf count must be a power of two");
    IRONMAN_CHECK(m >= 2 && std::has_single_bit(uint64_t(m)),
                  "arity must be a power of two");

    unsigned total_bits = std::countr_zero(leaves);
    unsigned m_bits = std::countr_zero(uint64_t(m));

    std::vector<unsigned> arities;
    unsigned rem = total_bits % m_bits;
    if (rem)
        arities.push_back(1u << rem);
    for (unsigned i = 0; i < total_bits / m_bits; ++i)
        arities.push_back(m);
    return arities;
}

std::vector<unsigned>
alphaDigits(size_t alpha, const std::vector<unsigned> &arities)
{
    size_t leaves = 1;
    for (unsigned a : arities)
        leaves *= a;
    IRONMAN_CHECK(alpha < leaves);

    std::vector<unsigned> digits(arities.size());
    for (size_t i = arities.size(); i-- > 0;) {
        digits[i] = alpha % arities[i];
        alpha /= arities[i];
    }
    return digits;
}

GgmExpansion
ggmExpand(crypto::TreePrg &prg, const Block &seed,
          const std::vector<unsigned> &arities)
{
    GgmExpansion out;
    out.levelSums.resize(arities.size());

    std::vector<Block> cur{seed};
    std::vector<Block> next;

    for (size_t lvl = 0; lvl < arities.size(); ++lvl) {
        unsigned m = arities[lvl];
        next.resize(cur.size() * m);
        prg.expandLevel(cur.data(), cur.size(), next.data(), m);

        auto &sums = out.levelSums[lvl];
        sums.assign(m, Block::zero());
        for (size_t j = 0; j < cur.size(); ++j)
            for (unsigned c = 0; c < m; ++c)
                sums[c] ^= next[j * m + c];

        cur.swap(next);
    }

    out.leafSum = Block::zero();
    for (const Block &b : cur)
        out.leafSum ^= b;
    out.leaves = std::move(cur);
    return out;
}

GgmReconstruction
ggmReconstruct(crypto::TreePrg &prg, size_t alpha,
               const std::vector<unsigned> &arities,
               const std::vector<std::vector<Block>> &known_sums)
{
    IRONMAN_CHECK(known_sums.size() == arities.size());
    auto digits = alphaDigits(alpha, arities);

    // cur holds all nodes of the current level; the entry at the path
    // index `hole` is unknown (kept zero and never read as a parent).
    std::vector<Block> cur{Block::zero()};
    size_t hole = 0;

    std::vector<Block> next;
    std::vector<Block> acc;
    std::vector<Block> known_parents;
    std::vector<Block> known_children;

    for (size_t lvl = 0; lvl < arities.size(); ++lvl) {
        unsigned m = arities[lvl];
        unsigned digit = digits[lvl];
        next.assign(cur.size() * m, Block::zero());

        // Expand every *known* parent (batched, skipping the hole);
        // accumulate per-slot sums over the children we just derived.
        known_parents.clear();
        for (size_t j = 0; j < cur.size(); ++j)
            if (j != hole)
                known_parents.push_back(cur[j]);
        known_children.resize(known_parents.size() * m);
        prg.expandLevel(known_parents.data(), known_parents.size(),
                        known_children.data(), m);

        acc.assign(m, Block::zero());
        size_t src = 0;
        for (size_t j = 0; j < cur.size(); ++j) {
            if (j == hole)
                continue;
            for (unsigned c = 0; c < m; ++c) {
                Block child = known_children[src * m + c];
                next[j * m + c] = child;
                acc[c] ^= child;
            }
            ++src;
        }

        // Recover the punctured parent's children at every slot except
        // the path digit: child = K_c ^ (sum of known slot-c children).
        IRONMAN_CHECK(known_sums[lvl].size() == m);
        for (unsigned c = 0; c < m; ++c) {
            if (c == digit)
                continue;
            next[hole * m + c] = known_sums[lvl][c] ^ acc[c];
        }

        hole = hole * m + digit;
        cur.swap(next);
    }

    IRONMAN_CHECK(hole == alpha);
    GgmReconstruction out;
    out.leaves = std::move(cur);
    out.alpha = alpha;
    return out;
}

} // namespace ironman::ot
