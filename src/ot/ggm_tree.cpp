#include "ot/ggm_tree.h"

#include <algorithm>
#include <bit>

#include "common/logging.h"

namespace ironman::ot {

std::vector<unsigned>
treeArities(size_t leaves, unsigned m)
{
    IRONMAN_CHECK(leaves >= 2 && std::has_single_bit(leaves),
                  "leaf count must be a power of two");
    IRONMAN_CHECK(m >= 2 && std::has_single_bit(uint64_t(m)),
                  "arity must be a power of two");

    unsigned total_bits = std::countr_zero(leaves);
    unsigned m_bits = std::countr_zero(uint64_t(m));

    std::vector<unsigned> arities;
    unsigned rem = total_bits % m_bits;
    if (rem)
        arities.push_back(1u << rem);
    for (unsigned i = 0; i < total_bits / m_bits; ++i)
        arities.push_back(m);
    return arities;
}

void
alphaDigitsInto(size_t alpha, const std::vector<unsigned> &arities,
                unsigned *digits)
{
    size_t leaves = 1;
    for (unsigned a : arities)
        leaves *= a;
    IRONMAN_CHECK(alpha < leaves);

    for (size_t i = arities.size(); i-- > 0;) {
        digits[i] = unsigned(alpha % arities[i]);
        alpha /= arities[i];
    }
}

std::vector<unsigned>
alphaDigits(size_t alpha, const std::vector<unsigned> &arities)
{
    std::vector<unsigned> digits(arities.size());
    alphaDigitsInto(alpha, arities, digits.data());
    return digits;
}

GgmSumLayout
GgmSumLayout::of(const std::vector<unsigned> &arities)
{
    GgmSumLayout layout;
    layout.arities = arities;
    layout.offset.reserve(arities.size());
    layout.leaves = 1;
    for (unsigned m : arities) {
        layout.offset.push_back(uint32_t(layout.total));
        layout.total += m;
        layout.leaves *= m;
    }
    return layout;
}

void
GgmScratch::reserve(size_t leaves, unsigned max_arity)
{
    // Intermediate levels hold at most leaves/2 nodes (the last level
    // is written straight into the caller's span), but reconstruction
    // packs up to a full level of children.
    if (ping.size() < leaves)
        ping.resize(leaves);
    if (pong.size() < leaves)
        pong.resize(leaves);
    if (parents.size() < leaves)
        parents.resize(leaves);
    if (children.size() < leaves)
        children.resize(leaves);
    if (acc.size() < max_arity)
        acc.resize(max_arity);
}

void
ggmExpandInto(crypto::SeedExpander &prg, const Block &seed,
              const GgmSumLayout &layout, GgmScratch &scratch,
              Block *leaves, Block *level_sums, Block *leaf_sum)
{
    const size_t num_levels = layout.arities.size();
    IRONMAN_CHECK(num_levels >= 1);
    unsigned max_arity = *std::max_element(layout.arities.begin(),
                                           layout.arities.end());
    scratch.reserve(layout.leaves, max_arity);

    Block *cur = scratch.ping.data();
    cur[0] = seed;
    size_t count = 1;

    for (size_t lvl = 0; lvl < num_levels; ++lvl) {
        const unsigned m = layout.arities[lvl];
        Block *next = lvl + 1 == num_levels
                          ? leaves
                          : (cur == scratch.ping.data()
                                 ? scratch.pong.data()
                                 : scratch.ping.data());
        prg.expand(cur, next, count, m);

        Block *sums = level_sums + layout.offset[lvl];
        std::fill(sums, sums + m, Block::zero());
        for (size_t j = 0; j < count; ++j)
            for (unsigned c = 0; c < m; ++c)
                sums[c] ^= next[j * m + c];

        cur = next;
        count *= m;
    }

    Block total = Block::zero();
    for (size_t j = 0; j < layout.leaves; ++j)
        total ^= leaves[j];
    *leaf_sum = total;
}

void
GgmBatchScratch::reserve(size_t trees, const GgmSumLayout &layout,
                         bool staged_leaves)
{
    const size_t num_levels = layout.arities.size();
    // Non-final levels hold at most leaves/last_arity nodes per tree;
    // a staged final level additionally ping-pongs the full leaf set.
    size_t cap = num_levels >= 2 ? layout.leaves / layout.arities.back()
                                 : 1;
    if (staged_leaves)
        cap = std::max(cap, layout.leaves);
    const unsigned max_arity = *std::max_element(layout.arities.begin(),
                                                 layout.arities.end());
    if (ping.size() < trees * cap)
        ping.resize(trees * cap);
    if (pong.size() < trees * cap)
        pong.resize(trees * cap);
    if (seeds.size() < trees)
        seeds.resize(trees);
    if (acc.size() < max_arity)
        acc.resize(max_arity);
    if (digits.size() < trees * num_levels)
        digits.resize(trees * num_levels);
    if (holes.size() < trees)
        holes.resize(trees);
}

void
ggmExpandBatchInto(crypto::SeedExpander &prg, const Block *seeds,
                   size_t num_trees, const GgmSumLayout &layout,
                   GgmBatchScratch &scratch, Block *leaves,
                   size_t leaf_stride, Block *level_sums,
                   size_t sums_stride, Block *leaf_sums)
{
    const size_t num_levels = layout.arities.size();
    IRONMAN_CHECK(num_levels >= 1 && num_trees >= 1);
    const bool staged = leaf_stride != layout.leaves;
    scratch.reserve(num_trees, layout, staged);

    std::copy(seeds, seeds + num_trees, scratch.seeds.data());
    const Block *cur = scratch.seeds.data();
    Block *pa = scratch.ping.data();
    Block *pb = scratch.pong.data();
    size_t count = 1;

    for (size_t lvl = 0; lvl < num_levels; ++lvl) {
        const unsigned m = layout.arities[lvl];
        const bool final_lvl = lvl + 1 == num_levels;
        Block *next = final_lvl && !staged ? leaves
                                           : (cur == pa ? pb : pa);
        // ONE expander call covers this level of every tree: the
        // tree-major matrix is self-preserving under expansion (seed
        // i's children land at i*m .. i*m+m-1).
        prg.expand(cur, next, num_trees * count, m);

        for (size_t tr = 0; tr < num_trees; ++tr) {
            Block *sums =
                level_sums + tr * sums_stride + layout.offset[lvl];
            const Block *kids = next + tr * count * m;
            std::fill(sums, sums + m, Block::zero());
            for (size_t j = 0; j < count; ++j)
                for (unsigned c = 0; c < m; ++c)
                    sums[c] ^= kids[j * m + c];
        }

        cur = next;
        count *= m;
    }

    if (staged)
        for (size_t tr = 0; tr < num_trees; ++tr)
            std::copy_n(cur + tr * layout.leaves, layout.leaves,
                        leaves + tr * leaf_stride);

    // XOR of a tree's leaves == XOR of its final-level slot sums.
    if (leaf_sums) {
        const size_t last = num_levels - 1;
        const unsigned m = layout.arities[last];
        for (size_t tr = 0; tr < num_trees; ++tr) {
            const Block *sums =
                level_sums + tr * sums_stride + layout.offset[last];
            Block total = Block::zero();
            for (unsigned c = 0; c < m; ++c)
                total ^= sums[c];
            leaf_sums[tr] = total;
        }
    }
}

void
ggmReconstructBatchInto(crypto::SeedExpander &prg, const size_t *alphas,
                        size_t num_trees, const GgmSumLayout &layout,
                        const Block *known_sums, size_t sums_stride,
                        GgmBatchScratch &scratch, Block *leaves,
                        size_t leaf_stride)
{
    const size_t num_levels = layout.arities.size();
    IRONMAN_CHECK(num_levels >= 1 && num_trees >= 1);
    const bool staged = leaf_stride != layout.leaves;
    scratch.reserve(num_trees, layout, staged);

    for (size_t tr = 0; tr < num_trees; ++tr) {
        IRONMAN_CHECK(alphas[tr] < layout.leaves);
        alphaDigitsInto(alphas[tr], layout.arities,
                        scratch.digits.data() + tr * num_levels);
        scratch.holes[tr] = 0;
    }

    // The punctured node of every tree rides through the batched
    // expansion as a zero seed: its children are garbage, excluded
    // from the slot sums and overwritten by the recovery below — so
    // each level stays ONE expander call with no parent packing.
    std::fill(scratch.seeds.data(), scratch.seeds.data() + num_trees,
              Block::zero());
    const Block *cur = scratch.seeds.data();
    Block *pa = scratch.ping.data();
    Block *pb = scratch.pong.data();
    Block *acc = scratch.acc.data();
    size_t count = 1;

    for (size_t lvl = 0; lvl < num_levels; ++lvl) {
        const unsigned m = layout.arities[lvl];
        const bool final_lvl = lvl + 1 == num_levels;
        Block *next = final_lvl && !staged ? leaves
                                           : (cur == pa ? pb : pa);
        prg.expand(cur, next, num_trees * count, m);

        for (size_t tr = 0; tr < num_trees; ++tr) {
            const unsigned digit =
                scratch.digits[tr * num_levels + lvl];
            const size_t hole = scratch.holes[tr];
            Block *kids = next + tr * count * m;

            std::fill(acc, acc + m, Block::zero());
            for (size_t j = 0; j < count; ++j) {
                if (j == hole)
                    continue;
                for (unsigned c = 0; c < m; ++c)
                    acc[c] ^= kids[j * m + c];
            }

            // Recover the punctured parent's children at every slot
            // except the path digit: child = K_c ^ (known slot-c sum).
            const Block *sums =
                known_sums + tr * sums_stride + layout.offset[lvl];
            for (unsigned c = 0; c < m; ++c)
                kids[hole * m + c] =
                    c == digit ? Block::zero() : sums[c] ^ acc[c];

            scratch.holes[tr] = hole * m + digit;
        }

        cur = next;
        count *= m;
    }

    if (staged)
        for (size_t tr = 0; tr < num_trees; ++tr)
            std::copy_n(cur + tr * layout.leaves, layout.leaves,
                        leaves + tr * leaf_stride);
}

void
ggmReconstructInto(crypto::SeedExpander &prg, size_t alpha,
                   const GgmSumLayout &layout, const Block *known_sums,
                   GgmScratch &scratch, Block *leaves)
{
    const size_t num_levels = layout.arities.size();
    IRONMAN_CHECK(num_levels >= 1 && alpha < layout.leaves);
    constexpr size_t kMaxLevels = 64;
    IRONMAN_CHECK(num_levels <= kMaxLevels);
    unsigned digits[kMaxLevels];
    alphaDigitsInto(alpha, layout.arities, digits);
    unsigned max_arity = *std::max_element(layout.arities.begin(),
                                           layout.arities.end());
    scratch.reserve(layout.leaves, max_arity);

    // cur holds all nodes of the current level; the entry at the path
    // index `hole` is unknown (kept zero and never read as a parent).
    Block *cur = scratch.ping.data();
    cur[0] = Block::zero();
    size_t count = 1;
    size_t hole = 0;

    for (size_t lvl = 0; lvl < num_levels; ++lvl) {
        const unsigned m = layout.arities[lvl];
        const unsigned digit = digits[lvl];
        Block *next = lvl + 1 == num_levels
                          ? leaves
                          : (cur == scratch.ping.data()
                                 ? scratch.pong.data()
                                 : scratch.ping.data());

        // Expand every *known* parent (batched, skipping the hole);
        // accumulate per-slot sums over the children we just derived.
        Block *packed = scratch.parents.data();
        for (size_t j = 0; j < count; ++j)
            if (j != hole)
                *packed++ = cur[j];
        const size_t known = count - 1;
        prg.expand(scratch.parents.data(), scratch.children.data(),
                   known, m);

        Block *acc = scratch.acc.data();
        std::fill(acc, acc + m, Block::zero());
        size_t src = 0;
        for (size_t j = 0; j < count; ++j) {
            if (j == hole)
                continue;
            for (unsigned c = 0; c < m; ++c) {
                Block child = scratch.children[src * m + c];
                next[j * m + c] = child;
                acc[c] ^= child;
            }
            ++src;
        }

        // Recover the punctured parent's children at every slot except
        // the path digit: child = K_c ^ (sum of known slot-c children).
        const Block *sums = known_sums + layout.offset[lvl];
        for (unsigned c = 0; c < m; ++c)
            next[hole * m + c] =
                c == digit ? Block::zero() : sums[c] ^ acc[c];

        hole = hole * m + digit;
        cur = next;
        count *= m;
    }

    IRONMAN_CHECK(hole == alpha);
}

} // namespace ironman::ot
