#include "ot/ferret.h"

#include <algorithm>

#include "common/logging.h"
#include "ot/spcot.h"

namespace ironman::ot {

namespace {

LpnParams
lpnParamsOf(const FerretParams &p)
{
    LpnParams lp;
    lp.n = p.n;
    lp.k = p.k;
    lp.d = p.lpnWeight;
    lp.seed = p.lpnSeed;
    return lp;
}

SpcotConfig
spcotConfigOf(const FerretParams &p)
{
    SpcotConfig cfg;
    cfg.numLeaves = p.treeLeaves();
    cfg.arity = p.arity;
    cfg.prg = p.prg;
    return cfg;
}

} // namespace

// ---------------------------------------------------------------------------
// Sender
// ---------------------------------------------------------------------------

FerretCotSender::FerretCotSender(net::Channel &channel,
                                 const FerretParams &params,
                                 const Block &delta,
                                 std::vector<Block> base)
    : ch(channel), p(params), delta_(delta), baseQ(std::move(base)),
      encoder(lpnParamsOf(params))
{
    IRONMAN_CHECK(baseQ.size() >= p.reservedCots(),
                  "need k + t*log2(l) base COTs");
}

void
FerretCotSender::extendInto(Rng &rng, Block *out)
{
    Timer total;
    ws.prepare(p, threads);
    const SpcotConfig cfg = spcotConfigOf(p);
    const size_t bucket = p.bucketSize();
    const size_t leaves = p.treeLeaves();
    const size_t spcot_cots = p.t * p.cotsPerTree();

    // 1. Split the base reserve.
    const Block *lpn_r = baseQ.data();            // k entries
    const Block *spcot_q = baseQ.data() + p.k;    // t*log2(l) entries

    // 2. Interactive SPCOT into the workspace leaf matrix.
    Timer phase;
    uint64_t prg_ops = 0;
    spcotSendInto(ch, cfg, p.t, delta_, spcot_q, rng, tweak, ws.pool,
                  ws.spcot, ws.leafMatrix, &prg_ops);
    stats_.add("spcot_us", uint64_t(phase.seconds() * 1e6));
    stats_.add("spcot_prg_ops", prg_ops);

    // 3. Scatter tree leaves into the length-n w vector, then LPN.
    phase.reset();
    Block *z = ws.rows;
    for (size_t tr = 0; tr < p.t; ++tr) {
        size_t row0 = tr * bucket;
        size_t width = std::min(bucket, p.n - row0);
        std::copy_n(ws.leafMatrix + tr * leaves, width, z + row0);
    }
    encoder.encodeBlocksPool(lpn_r, z, p.n, ws.pool, ws.lpn.data());
    stats_.add("lpn_us", uint64_t(phase.seconds() * 1e6));
    stats_.add("lpn_aes_ops",
               uint64_t(LpnEncoder::aesCallsPerRow) * p.n);

    // 4. Bootstrap: re-reserve, hand out the rest.
    const size_t reserved = p.k + spcot_cots;
    baseQ.assign(z, z + reserved);
    std::copy(z + reserved, z + p.n, out);

    stats_.add("extend_us", uint64_t(total.seconds() * 1e6));
    stats_.add("extensions", 1);
    stats_.add("output_cots", p.n - reserved);
}

std::vector<Block>
FerretCotSender::extend(Rng &rng)
{
    std::vector<Block> out(p.usableOts());
    extendInto(rng, out.data());
    return out;
}

// ---------------------------------------------------------------------------
// Receiver
// ---------------------------------------------------------------------------

FerretCotReceiver::FerretCotReceiver(net::Channel &channel,
                                     const FerretParams &params,
                                     BitVec base_choice,
                                     std::vector<Block> base_t)
    : ch(channel), p(params), baseChoice(std::move(base_choice)),
      baseT(std::move(base_t)), encoder(lpnParamsOf(params))
{
    IRONMAN_CHECK(baseT.size() >= p.reservedCots() &&
                      baseChoice.size() == baseT.size(),
                  "need k + t*log2(l) base COTs");
}

void
FerretCotReceiver::extendInto(Rng &rng, BitVec &choice_out, Block *t_out)
{
    Timer total;
    ws.prepare(p, threads);
    const SpcotConfig cfg = spcotConfigOf(p);
    const size_t bucket = p.bucketSize();
    const size_t leaves = p.treeLeaves();
    const size_t spcot_cots = p.t * p.cotsPerTree();

    // 1. Split the base reserve: bits e / blocks s feed LPN, the rest
    // feeds SPCOT.
    ws.e.assignRange(baseChoice, 0, p.k);
    const Block *lpn_s = baseT.data();

    // 2. Sample one punctured position per bucket and run SPCOT.
    for (size_t tr = 0; tr < p.t; ++tr) {
        size_t row0 = tr * bucket;
        size_t width = std::min(bucket, p.n - row0);
        ws.alphas[tr] = rng.nextBelow(width);
    }

    Timer phase;
    uint64_t prg_ops = 0;
    spcotRecvInto(ch, cfg, p.t, ws.alphas.data(), baseChoice, p.k,
                  baseT.data() + p.k, tweak, ws.pool, ws.spcot,
                  ws.leafMatrix, &prg_ops);
    stats_.add("spcot_us", uint64_t(phase.seconds() * 1e6));
    stats_.add("spcot_prg_ops", prg_ops);

    // 3. Build (u, v) over the n rows, then LPN-encode into (x, y).
    phase.reset();
    ws.x.resize(p.n);
    ws.x.zeroAll();
    Block *y = ws.rows;
    for (size_t tr = 0; tr < p.t; ++tr) {
        size_t row0 = tr * bucket;
        size_t width = std::min(bucket, p.n - row0);
        std::copy_n(ws.leafMatrix + tr * leaves, width, y + row0);
        ws.x.set(row0 + ws.alphas[tr], true);
    }
    encoder.encodeBits(ws.e, ws.x, ws.lpn[0]);
    encoder.encodeBlocksPool(lpn_s, y, p.n, ws.pool, ws.lpn.data());
    stats_.add("lpn_us", uint64_t(phase.seconds() * 1e6));
    stats_.add("lpn_aes_ops",
               uint64_t(LpnEncoder::aesCallsPerRow) * p.n * 2);

    // 4. Bootstrap.
    const size_t reserved = p.k + spcot_cots;
    baseChoice.assignRange(ws.x, 0, reserved);
    baseT.assign(y, y + reserved);

    choice_out.assignRange(ws.x, reserved, p.n - reserved);
    std::copy(y + reserved, y + p.n, t_out);

    stats_.add("extend_us", uint64_t(total.seconds() * 1e6));
    stats_.add("extensions", 1);
    stats_.add("output_cots", p.n - reserved);
}

FerretCotReceiver::Output
FerretCotReceiver::extend(Rng &rng)
{
    Output out;
    out.t.resize(p.usableOts());
    extendInto(rng, out.choice, out.t.data());
    return out;
}

} // namespace ironman::ot
