#include "ot/ferret.h"

#include "common/logging.h"
#include "ot/spcot.h"

namespace ironman::ot {

namespace {

LpnParams
lpnParamsOf(const FerretParams &p)
{
    LpnParams lp;
    lp.n = p.n;
    lp.k = p.k;
    lp.d = p.lpnWeight;
    lp.seed = p.lpnSeed;
    return lp;
}

SpcotConfig
spcotConfigOf(const FerretParams &p)
{
    SpcotConfig cfg;
    cfg.numLeaves = p.treeLeaves();
    cfg.arity = p.arity;
    cfg.prg = p.prg;
    return cfg;
}

} // namespace

// ---------------------------------------------------------------------------
// Sender
// ---------------------------------------------------------------------------

FerretCotSender::FerretCotSender(net::Channel &channel,
                                 const FerretParams &params,
                                 const Block &delta,
                                 std::vector<Block> base)
    : ch(channel), p(params), delta_(delta), baseQ(std::move(base)),
      encoder(lpnParamsOf(params))
{
    IRONMAN_CHECK(baseQ.size() >= p.reservedCots(),
                  "need k + t*log2(l) base COTs");
}

std::vector<Block>
FerretCotSender::extend(Rng &rng)
{
    Timer total;
    const SpcotConfig cfg = spcotConfigOf(p);
    const size_t bucket = p.bucketSize();
    const size_t spcot_cots = p.t * cfg.cotsPerTree();

    // 1. Split the base reserve.
    const Block *lpn_r = baseQ.data();            // k entries
    const Block *spcot_q = baseQ.data() + p.k;    // t*log2(l) entries

    // 2. Interactive SPCOT.
    Timer phase;
    SpcotSenderOutput sp =
        spcotSend(ch, cfg, p.t, delta_, spcot_q, rng, tweak);
    stats_.add("spcot_us", uint64_t(phase.seconds() * 1e6));
    stats_.add("spcot_prg_ops", sp.prgOps);

    // 3. Scatter tree leaves into the length-n w vector, then LPN.
    phase.reset();
    std::vector<Block> z(p.n);
    for (size_t tr = 0; tr < p.t; ++tr) {
        size_t row0 = tr * bucket;
        size_t width = std::min(bucket, p.n - row0);
        std::copy_n(sp.w[tr].begin(), width, z.begin() + row0);
    }
    encoder.encodeBlocksParallel(lpn_r, z.data(), p.n, threads);
    stats_.add("lpn_us", uint64_t(phase.seconds() * 1e6));
    stats_.add("lpn_index_aes_ops",
               uint64_t(LpnEncoder::aesCallsPerRow) * p.n);

    // 4. Bootstrap: re-reserve, hand out the rest.
    const size_t reserved = p.k + spcot_cots;
    baseQ.assign(z.begin(), z.begin() + reserved);
    std::vector<Block> out(z.begin() + reserved, z.end());

    stats_.add("extend_us", uint64_t(total.seconds() * 1e6));
    stats_.add("extensions", 1);
    stats_.add("output_cots", out.size());
    return out;
}

// ---------------------------------------------------------------------------
// Receiver
// ---------------------------------------------------------------------------

FerretCotReceiver::FerretCotReceiver(net::Channel &channel,
                                     const FerretParams &params,
                                     BitVec base_choice,
                                     std::vector<Block> base_t)
    : ch(channel), p(params), baseChoice(std::move(base_choice)),
      baseT(std::move(base_t)), encoder(lpnParamsOf(params))
{
    IRONMAN_CHECK(baseT.size() >= p.reservedCots() &&
                      baseChoice.size() == baseT.size(),
                  "need k + t*log2(l) base COTs");
}

FerretCotReceiver::Output
FerretCotReceiver::extend(Rng &rng)
{
    Timer total;
    const SpcotConfig cfg = spcotConfigOf(p);
    const size_t bucket = p.bucketSize();
    const size_t spcot_cots = p.t * cfg.cotsPerTree();

    // 1. Split the base reserve: bits e / blocks s feed LPN, the rest
    // feeds SPCOT.
    BitVec e(p.k);
    for (size_t i = 0; i < p.k; ++i)
        e.set(i, baseChoice.get(i));
    const Block *lpn_s = baseT.data();

    // 2. Sample one punctured position per bucket and run SPCOT.
    std::vector<size_t> alphas(p.t);
    for (size_t tr = 0; tr < p.t; ++tr) {
        size_t row0 = tr * bucket;
        size_t width = std::min(bucket, p.n - row0);
        alphas[tr] = rng.nextBelow(width);
    }

    Timer phase;
    SpcotReceiverOutput sp = spcotRecv(ch, cfg, p.t, alphas, baseChoice,
                                       p.k, baseT.data() + p.k, tweak);
    stats_.add("spcot_us", uint64_t(phase.seconds() * 1e6));
    stats_.add("spcot_prg_ops", sp.prgOps);

    // 3. Build (u, v) over the n rows, then LPN-encode into (x, y).
    phase.reset();
    BitVec x(p.n);
    std::vector<Block> y(p.n);
    for (size_t tr = 0; tr < p.t; ++tr) {
        size_t row0 = tr * bucket;
        size_t width = std::min(bucket, p.n - row0);
        std::copy_n(sp.v[tr].begin(), width, y.begin() + row0);
        x.set(row0 + alphas[tr], true);
    }
    encoder.encodeBits(e, x);
    encoder.encodeBlocksParallel(lpn_s, y.data(), p.n, threads);
    stats_.add("lpn_us", uint64_t(phase.seconds() * 1e6));
    stats_.add("lpn_index_aes_ops",
               uint64_t(LpnEncoder::aesCallsPerRow) * p.n * 2);

    // 4. Bootstrap.
    const size_t reserved = p.k + spcot_cots;
    BitVec next_choice(reserved);
    for (size_t i = 0; i < reserved; ++i)
        next_choice.set(i, x.get(i));
    baseChoice = std::move(next_choice);
    baseT.assign(y.begin(), y.begin() + reserved);

    Output out;
    out.choice.resize(p.n - reserved);
    for (size_t i = 0; i < out.choice.size(); ++i)
        out.choice.set(i, x.get(reserved + i));
    out.t.assign(y.begin() + reserved, y.end());

    stats_.add("extend_us", uint64_t(total.seconds() * 1e6));
    stats_.add("extensions", 1);
    stats_.add("output_cots", out.t.size());
    return out;
}

} // namespace ironman::ot
