#include "ot/ferret.h"

#include <algorithm>

#include "common/logging.h"
#include "common/trace.h"
#include "ot/spcot.h"

namespace ironman::ot {

namespace {

/**
 * Engine phases are traced on every Nth extension only: a saturated
 * reservoir extends continuously and per-phase spans for all of them
 * would wash the per-request timeline out of the bounded rings. The
 * phase Timers already run for the stats ledger, so a sampled span is
 * just one extra ring write re-using their duration.
 */
constexpr uint64_t kTracePhaseSampleEvery = 4;

bool
sampleThisExtension()
{
    if (!trace::enabled())
        return false;
    static std::atomic<uint64_t> n{0};
    return n.fetch_add(1, std::memory_order_relaxed) %
               kTracePhaseSampleEvery ==
           0;
}

/** Span with explicit duration ending now (the Timer's phase). */
void
phaseSpan(bool sampled, const char *name, uint64_t dur_us,
          uint64_t arg = 0)
{
    if (sampled)
        trace::emitSpan(name, "engine", trace::nowUs() - dur_us, dur_us,
                        0, arg);
}

LpnParams
lpnParamsOf(const FerretParams &p)
{
    LpnParams lp;
    lp.n = p.n;
    lp.k = p.k;
    lp.d = p.lpnWeight;
    lp.seed = p.lpnSeed;
    return lp;
}

SpcotConfig
spcotConfigOf(const FerretParams &p)
{
    SpcotConfig cfg;
    cfg.numLeaves = p.treeLeaves();
    cfg.arity = p.arity;
    cfg.prg = p.prg;
    return cfg;
}

/**
 * Encode rows [row0, row0+count) through the tape when one is built,
 * falling back to the streaming scratch path (2^23+ sets, above the
 * tape memory cap). Output is identical either way.
 */
void
encodeRange(const LpnEncoder &enc, OtWorkspace &ws, const Block *in,
            Block *inout, size_t row0, size_t count, int scratch_idx)
{
    if (ws.tape.ready())
        enc.encodeBlocksTape(in, inout, row0, count, ws.tape);
    else
        enc.encodeBlocks(in, inout, row0, count, ws.lpn[scratch_idx]);
}

/** Pool-parallel encodeRange over rows [row0, row0+count). */
void
encodePooled(const LpnEncoder &enc, OtWorkspace &ws, const Block *in,
             Block *inout, size_t row0, size_t count)
{
    ws.pool.parallelFor(count, [&](int worker, size_t lo, size_t hi) {
        encodeRange(enc, ws, in, inout + lo, row0 + lo, hi - lo, worker);
    });
}

/**
 * Build the engine's index tape unless the set is above the memory
 * cap (2^23+, which stays on the streaming path). Idempotent; shared
 * by both endpoints so the cap policy lives in one place.
 */
void
ensureTapeFor(const FerretParams &p, const LpnEncoder &enc,
              OtWorkspace &ws)
{
    if (LpnIndexTape::bytesFor(p.n, p.lpnWeight) <=
        OtWorkspace::kLpnTapeBytesCap)
        enc.buildTape(ws.tape, p.n, ws.pool, ws.lpn.data());
}

} // namespace

// ---------------------------------------------------------------------------
// Sender
// ---------------------------------------------------------------------------

FerretCotSender::FerretCotSender(net::Channel &channel,
                                 const FerretParams &params,
                                 const Block &delta,
                                 std::vector<Block> base)
    : ch(&channel), p(params), delta_(delta), baseQ(std::move(base)),
      encoder(lpnParamsOf(params))
{
    IRONMAN_CHECK(baseQ.size() >= p.reservedCots(),
                  "need k + t*log2(l) base COTs");
}

FerretCotSender::FerretCotSender(const FerretParams &params)
    : p(params), encoder(lpnParamsOf(params))
{
}

void
FerretCotSender::resetSession(net::Channel &channel, const Block &delta,
                              const Block *base, size_t n)
{
    IRONMAN_CHECK(n >= p.reservedCots(),
                  "need k + t*log2(l) base COTs");
    ch = &channel;
    delta_ = delta;
    baseQ.assign(base, base + n);
    // A prefetched transcript of the previous session (if any) is
    // abandoned with its session: the new base reserve replaces the
    // material it was derandomized against.
    tweak = 1;
    havePending = false;
    slotCur = 0;
}

void
FerretCotSender::prewarm()
{
    const bool sf = scatterFree_ && OtWorkspace::scatterFreeFeed(p);
    ws.prepare(p, threads, pipelined_ ? 2 : 1, sf);
    ensureTape();
    baseQ.reserve(p.reservedCots());
    baseNext.reserve(p.reservedCots());
}

void
FerretCotSender::ensureTape()
{
    ensureTapeFor(p, encoder, ws);
}

void
FerretCotSender::extendInto(Rng &rng, Block *out)
{
    Timer total;
    const bool traced = sampleThisExtension();
    IRONMAN_CHECK(ch && baseQ.size() >= p.reservedCots(),
                  "engine not bound to a session (resetSession)");
    // Scatter-free feed: every bucket is one whole tree, so SPCOT
    // writes straight into the LPN row slots and the leaf -> rows
    // pass disappears (the arena aliases rows onto the leaf slots).
    // Like the pipeline toggle, the mode must not flip while a
    // prefetched transcript occupies a slot (prepare() re-carves).
    const bool sf = scatterFree_ && OtWorkspace::scatterFreeFeed(p);
    IRONMAN_CHECK(!havePending || ws.scatterFree() == sf,
                  "setScatterFree with a transcript in flight");
    ws.prepare(p, threads, pipelined_ ? 2 : 1, sf);
    ensureTape();
    const SpcotConfig cfg = spcotConfigOf(p);
    const size_t bucket = p.bucketSize();
    const size_t leaves = p.treeLeaves();
    const size_t spcot_cots = p.t * p.cotsPerTree();
    const size_t reserved = p.k + spcot_cots;
    uint64_t prg_ops = 0;

    if (!pipelined_) {
        // A prefetched transcript in flight cannot be discarded: its
        // derandomization bits already spent base-COT material, and
        // re-running SPCOT over the same reserve would leak choice
        // bits. Flip modes only on engines with no pending transcript.
        IRONMAN_CHECK(!havePending,
                      "setPipelined(false) with a transcript in flight");

        // 1. Split the base reserve.
        const Block *lpn_r = baseQ.data();         // k entries
        const Block *spcot_q = baseQ.data() + p.k; // t*log2(l) entries

        // 2. Interactive SPCOT into the workspace leaf matrix — in
        // scatter-free mode that matrix IS the w vector.
        Timer phase;
        spcotSendInto(*ch, cfg, p.t, delta_, spcot_q, rng, tweak, ws.pool,
                      ws.spcot, ws.leaf[0], &prg_ops);
        const uint64_t spcot_us = uint64_t(phase.seconds() * 1e6);
        stats_.add("spcot_us", spcot_us);
        stats_.add("spcot_prg_ops", prg_ops);
        phaseSpan(traced, "spcot_send", spcot_us, prg_ops);

        // 3. Scatter tree leaves into the length-n w vector (no-op
        // when scatter-free), then LPN.
        phase.reset();
        Block *z = sf ? ws.leaf[0] : ws.rows;
        if (!sf)
            for (size_t tr = 0; tr < p.t; ++tr) {
                size_t row0 = tr * bucket;
                size_t width = std::min(bucket, p.n - row0);
                std::copy_n(ws.leaf[0] + tr * leaves, width, z + row0);
            }
        encodePooled(encoder, ws, lpn_r, z, 0, p.n);
        const uint64_t lpn_us = uint64_t(phase.seconds() * 1e6);
        stats_.add("lpn_us", lpn_us);
        phaseSpan(traced, "lpn_encode", lpn_us, p.n);

        // 4. Bootstrap: re-reserve, hand out the rest.
        baseQ.assign(z, z + reserved);
        std::copy(z + reserved, z + p.n, out);

        stats_.add("extend_us", uint64_t(total.seconds() * 1e6));
        stats_.add("extensions", 1);
        stats_.add("output_cots", p.n - reserved);
        return;
    }

    // Pipelined steady state. Slot slotCur holds this iteration's
    // already-expanded leaves (prefetched by the previous call); the
    // cold first call exchanges its own transcript inline.
    Timer phase;
    if (!havePending)
        spcotSendTranscript(*ch, cfg, p.t, delta_, baseQ.data() + p.k,
                            rng, tweak, &ws.pool, ws.spcot,
                            ws.leaf[slotCur], &prg_ops);

    // Scatter the pending leaves (scatter-free: slot slotCur already
    // IS the row vector), then encode the reserve prefix eagerly —
    // the next transcript's chosen-OT pads need q' = z[k..reserved).
    phase.reset();
    Block *z = sf ? ws.leaf[slotCur] : ws.rows;
    const Block *lpn_r = baseQ.data();
    if (!sf)
        for (size_t tr = 0; tr < p.t; ++tr) {
            size_t row0 = tr * bucket;
            size_t width = std::min(bucket, p.n - row0);
            std::copy_n(ws.leaf[slotCur] + tr * leaves, width, z + row0);
        }
    encodePooled(encoder, ws, lpn_r, z, 0, reserved);
    baseNext.assign(z, z + reserved);
    const uint64_t lpn_prefix_us = uint64_t(phase.seconds() * 1e6);
    stats_.add("lpn_prefix_us", lpn_prefix_us);
    phaseSpan(traced, "lpn_prefix", lpn_prefix_us, reserved);

    // Hand the output tail to the pool workers and, while they
    // gather-XOR, push iteration i+1's SPCOT transcript from this
    // thread (expansion runs serially here — the pool is busy; the
    // partition never changes the bits). Stage-handoff invariant:
    // slot slotCur is free (scattered above), the transcript writes
    // slot slotCur^1.
    phase.reset();
    auto encode_tail = [&](int worker, size_t lo, size_t hi) {
        encodeRange(encoder, ws, lpn_r, z + reserved + lo,
                    reserved + lo, hi - lo, worker);
    };
    ws.pool.parallelForAsync(p.n - reserved, encode_tail);

    const int next = slotCur ^ 1;
    uint64_t prefetch_ops = 0;
    Timer spcot_timer;
    spcotSendTranscript(*ch, cfg, p.t, delta_, baseNext.data() + p.k,
                        rng, tweak, /*pool=*/nullptr, ws.spcot,
                        ws.leaf[next], &prefetch_ops);
    const uint64_t spcot_us = uint64_t(spcot_timer.seconds() * 1e6);
    stats_.add("spcot_us", spcot_us);
    phaseSpan(traced, "spcot_transcript", spcot_us, prefetch_ops);

    ws.pool.wait();
    const uint64_t lpn_us = uint64_t(phase.seconds() * 1e6);
    stats_.add("lpn_us", lpn_us);
    phaseSpan(traced, "lpn_encode", lpn_us, p.n);
    std::copy(z + reserved, z + p.n, out);

    baseQ.swap(baseNext);
    slotCur = next;
    havePending = true;

    stats_.add("spcot_prg_ops", prg_ops + prefetch_ops);
    stats_.add("extend_us", uint64_t(total.seconds() * 1e6));
    stats_.add("extensions", 1);
    stats_.add("output_cots", p.n - reserved);
}

// ---------------------------------------------------------------------------
// Receiver
// ---------------------------------------------------------------------------

FerretCotReceiver::FerretCotReceiver(net::Channel &channel,
                                     const FerretParams &params,
                                     BitVec base_choice,
                                     std::vector<Block> base_t)
    : ch(&channel), p(params), baseChoice(std::move(base_choice)),
      baseT(std::move(base_t)), encoder(lpnParamsOf(params))
{
    IRONMAN_CHECK(baseT.size() >= p.reservedCots() &&
                      baseChoice.size() == baseT.size(),
                  "need k + t*log2(l) base COTs");
}

FerretCotReceiver::FerretCotReceiver(const FerretParams &params)
    : p(params), encoder(lpnParamsOf(params))
{
}

void
FerretCotReceiver::resetSession(net::Channel &channel,
                                const BitVec &base_choice,
                                const Block *base_t, size_t n)
{
    IRONMAN_CHECK(n >= p.reservedCots() && base_choice.size() >= n,
                  "need k + t*log2(l) base COTs");
    ch = &channel;
    baseChoice.assignRange(base_choice, 0, n);
    baseT.assign(base_t, base_t + n);
    // Abandon any prefetched transcript of the previous session.
    tweak = 1;
    havePending = false;
    slotCur = 0;
}

void
FerretCotReceiver::prewarm()
{
    const bool sf = scatterFree_ && OtWorkspace::scatterFreeFeed(p);
    ws.prepare(p, threads, 1, sf);
    ensureTape();
    baseT.reserve(p.reservedCots());
    baseTNext.reserve(p.reservedCots());
}

void
FerretCotReceiver::ensureTape()
{
    ensureTapeFor(p, encoder, ws);
}

void
FerretCotReceiver::extendInto(Rng &rng, BitVec &choice_out, Block *t_out)
{
    Timer total;
    const bool traced = sampleThisExtension();
    IRONMAN_CHECK(ch && baseT.size() >= p.reservedCots(),
                  "engine not bound to a session (resetSession)");
    // See the sender: scatter-free aliases the single leaf slot onto
    // the row vector, so reconstruction writes y directly.
    const bool sf = scatterFree_ && OtWorkspace::scatterFreeFeed(p);
    IRONMAN_CHECK(!havePending || ws.scatterFree() == sf,
                  "setScatterFree with a transcript in flight");
    ws.prepare(p, threads, 1, sf);
    ensureTape();
    const SpcotConfig cfg = spcotConfigOf(p);
    const size_t bucket = p.bucketSize();
    const size_t leaves = p.treeLeaves();
    const size_t spcot_cots = p.t * p.cotsPerTree();
    const size_t reserved = p.k + spcot_cots;
    uint64_t prg_ops = 0;

    auto draw_alphas = [&] {
        for (size_t tr = 0; tr < p.t; ++tr) {
            size_t row0 = tr * bucket;
            size_t width = std::min(bucket, p.n - row0);
            ws.alphas[tr] = rng.nextBelow(width);
        }
    };

    auto encode_bits = [&](const BitVec &in, BitVec &inout) {
        if (ws.tape.ready())
            encoder.encodeBitsTape(in, inout, ws.tape);
        else
            encoder.encodeBits(in, inout, ws.lpn[0]);
    };

    if (!pipelined_) {
        // See the sender: a pending prefetched transcript must not be
        // dropped (its derandomization bits spent base-COT material).
        IRONMAN_CHECK(!havePending,
                      "setPipelined(false) with a transcript in flight");

        // 1. Split the base reserve: bits e / blocks s feed LPN, the
        // rest feeds SPCOT.
        ws.e.assignRange(baseChoice, 0, p.k);
        const Block *lpn_s = baseT.data();

        // 2. Sample one punctured position per bucket and run SPCOT.
        draw_alphas();

        Timer phase;
        spcotRecvInto(*ch, cfg, p.t, ws.alphas.data(), baseChoice, p.k,
                      baseT.data() + p.k, tweak, ws.pool, ws.spcot,
                      ws.leaf[0], &prg_ops);
        const uint64_t spcot_us = uint64_t(phase.seconds() * 1e6);
        stats_.add("spcot_us", spcot_us);
        stats_.add("spcot_prg_ops", prg_ops);
        phaseSpan(traced, "spcot_recv", spcot_us, prg_ops);

        // 3. Build (u, v) over the n rows (scatter-free: the leaf
        // matrix already is v), then LPN-encode into (x, y).
        phase.reset();
        ws.x.resize(p.n);
        ws.x.zeroAll();
        Block *y = sf ? ws.leaf[0] : ws.rows;
        for (size_t tr = 0; tr < p.t; ++tr) {
            size_t row0 = tr * bucket;
            size_t width = std::min(bucket, p.n - row0);
            if (!sf)
                std::copy_n(ws.leaf[0] + tr * leaves, width, y + row0);
            ws.x.set(row0 + ws.alphas[tr], true);
        }
        encode_bits(ws.e, ws.x);
        encodePooled(encoder, ws, lpn_s, y, 0, p.n);
        const uint64_t lpn_us = uint64_t(phase.seconds() * 1e6);
        stats_.add("lpn_us", lpn_us);
        phaseSpan(traced, "lpn_encode", lpn_us, p.n);

        // 4. Bootstrap.
        baseChoice.assignRange(ws.x, 0, reserved);
        baseT.assign(y, y + reserved);

        choice_out.assignRange(ws.x, reserved, p.n - reserved);
        std::copy(y + reserved, y + p.n, t_out);

        stats_.add("extend_us", uint64_t(total.seconds() * 1e6));
        stats_.add("extensions", 1);
        stats_.add("output_cots", p.n - reserved);
        return;
    }

    // Pipelined steady state. slots[slotCur] holds this iteration's
    // transcript (ciphertexts + masked sums), pulled off the wire by
    // the previous call; only the unmask — which needs this call's
    // now-complete base reserve — and the tree reconstruction remain.
    ws.spcot.prepare(cfg, p.t, ws.pool.threads(), /*for_sender=*/false);
    SpcotRecvSlot *slot = &ws.spcot.slots[slotCur];

    Timer phase;
    if (!havePending) {
        draw_alphas();
        spcotRecvSendChoices(*ch, cfg, p.t, ws.alphas.data(), baseChoice,
                             p.k, tweak, ws.spcot, *slot);
        spcotRecvRecvTranscript(*ch, cfg, p.t, ws.spcot, *slot);
    }
    spcotRecvFinish(cfg, p.t, baseT.data() + p.k, ws.pool, ws.spcot,
                    *slot, ws.leaf[0], &prg_ops);
    const uint64_t spcot_us = uint64_t(phase.seconds() * 1e6);
    stats_.add("spcot_us", spcot_us);
    stats_.add("spcot_prg_ops", prg_ops);
    phaseSpan(traced, "spcot_finish", spcot_us, prg_ops);

    // Bit-LPN first: the next transcript's derandomization bits need
    // only x = e*A ^ u.
    phase.reset();
    ws.e.assignRange(baseChoice, 0, p.k);
    ws.x.resize(p.n);
    ws.x.zeroAll();
    Block *y = sf ? ws.leaf[0] : ws.rows;
    const Block *lpn_s = baseT.data();
    for (size_t tr = 0; tr < p.t; ++tr) {
        size_t row0 = tr * bucket;
        size_t width = std::min(bucket, p.n - row0);
        if (!sf)
            std::copy_n(ws.leaf[0] + tr * leaves, width, y + row0);
        ws.x.set(row0 + slot->alphas[tr], true);
    }
    encode_bits(ws.e, ws.x);
    const uint64_t lpn_bits_us = uint64_t(phase.seconds() * 1e6);
    stats_.add("lpn_bits_us", lpn_bits_us);
    phaseSpan(traced, "lpn_bits", lpn_bits_us, p.n);

    // Prefetch iteration i+1: choices out, then the block LPN runs on
    // the workers while this thread blocks on the returning
    // ciphertexts. Stage-handoff invariant: the next transcript fills
    // slots[slotCur^1] while the LPN stage still reads slots[slotCur]'s
    // alphas (and nothing else of it).
    SpcotRecvSlot *next_slot = &ws.spcot.slots[slotCur ^ 1];
    draw_alphas();
    spcotRecvSendChoices(*ch, cfg, p.t, ws.alphas.data(), ws.x, p.k,
                         tweak, ws.spcot, *next_slot);

    phase.reset();
    auto encode_blocks = [&](int worker, size_t lo, size_t hi) {
        encodeRange(encoder, ws, lpn_s, y + lo, lo, hi - lo, worker);
    };
    ws.pool.parallelForAsync(p.n, encode_blocks);
    spcotRecvRecvTranscript(*ch, cfg, p.t, ws.spcot, *next_slot);
    ws.pool.wait();
    const uint64_t lpn_us = uint64_t(phase.seconds() * 1e6);
    stats_.add("lpn_us", lpn_us);
    phaseSpan(traced, "lpn_encode", lpn_us, p.n);

    // Bootstrap + output.
    baseTNext.assign(y, y + reserved);
    baseT.swap(baseTNext);
    choiceNext.assignRange(ws.x, 0, reserved);
    std::swap(baseChoice, choiceNext);

    choice_out.assignRange(ws.x, reserved, p.n - reserved);
    std::copy(y + reserved, y + p.n, t_out);

    slotCur ^= 1;
    havePending = true;

    stats_.add("extend_us", uint64_t(total.seconds() * 1e6));
    stats_.add("extensions", 1);
    stats_.add("output_cots", p.n - reserved);
}

} // namespace ironman::ot
