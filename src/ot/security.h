/**
 * @file
 * Bit-security estimator for the primal LPN instances of Table 4.
 *
 * Follows the standard attack-cost methodology for PCG parameters
 * (Boyle et al., and Liu-Wang-Yang-Yu "The Hardness of LPN over Any
 * Integer Ring and Field for PCG Applications" [59], which the paper
 * cites for its parameter validation): the claimed security is the
 * minimum log2 cost over
 *
 *   - Pooled Gaussian elimination: draw k samples, succeed if all are
 *     noiseless; cost ~ k^omega / Pr[noiseless draw],
 *   - Prange-style information-set decoding on the dual code,
 *   - exhaustive noise-support search (never the minimum here but
 *     included for completeness).
 *
 * Constants differ slightly between published estimators; ours tracks
 * the Table 4 numbers within a few bits (recorded in EXPERIMENTS.md).
 */

#ifndef IRONMAN_OT_SECURITY_H
#define IRONMAN_OT_SECURITY_H

#include <cstddef>

namespace ironman::ot {

/** Attack-cost estimates, all in log2(bit operations). */
struct LpnSecurityEstimate
{
    double gaussBits;        ///< pooled Gaussian elimination
    double isdBits;          ///< Prange information-set decoding
    double exhaustiveBits;   ///< brute-force noise positions

    /** Claimed security: the cheapest attack. */
    double bits() const;
};

/**
 * Estimate the security of LPN with @p n samples, dimension @p k and
 * (regular) noise weight @p t.
 */
LpnSecurityEstimate estimateLpnSecurity(size_t n, size_t k, size_t t);

} // namespace ironman::ot

#endif // IRONMAN_OT_SECURITY_H
