/**
 * @file
 * Chosen 1-out-of-N oblivious transfer (N a power of two) from
 * log2(N) COT correlations — the building block of the table-lookup
 * protocols (Sec. 2.2: "comparison, truncation, or table lookup")
 * that frameworks like CrypTFlow2/SiRNN/Bolt use for GELU, Softmax
 * and friends.
 *
 * Construction: log N batched chosen 1-of-2 OTs deliver one key of
 * each pair (k_j^0, k_j^1) according to the receiver's index bits; the
 * pad of message i is a hash chain over the keys selected by i's
 * bits, so the receiver can strip exactly one ciphertext.
 */

#ifndef IRONMAN_OT_ONE_OF_N_H
#define IRONMAN_OT_ONE_OF_N_H

#include <cstdint>
#include <vector>

#include "common/bitvec.h"
#include "common/block.h"
#include "common/rng.h"
#include "crypto/crhf.h"
#include "net/channel.h"

namespace ironman::ot {

/**
 * Sender side of @p batch parallel 1-of-N OTs.
 *
 * @param msgs batch*N blocks, instance-major (msgs[inst*N + i]).
 * @param q Sender COT strings, batch*log2(N), consumed in order.
 * @param rng Source of the per-instance key pairs.
 * @param tweak In/out hash tweak counter (shared with the receiver).
 */
void oneOfNOtSend(net::Channel &ch, const crypto::Crhf &crhf,
                  const Block *msgs, size_t n_msgs, size_t batch,
                  const Block &delta, const Block *q, Rng &rng,
                  uint64_t &tweak);

/**
 * Receiver side; @p choices holds one index < n_msgs per instance.
 * Returns msgs[inst*N + choices[inst]] for each instance.
 */
std::vector<Block> oneOfNOtRecv(net::Channel &ch,
                                const crypto::Crhf &crhf,
                                const std::vector<uint32_t> &choices,
                                size_t n_msgs, const BitVec &b,
                                size_t b_offset, const Block *t,
                                uint64_t &tweak);

} // namespace ironman::ot

#endif // IRONMAN_OT_ONE_OF_N_H
