#include "ot/ferret_params.h"

#include "common/logging.h"

namespace ironman::ot {

FerretParams
paperParamSet(int log_ots)
{
    FerretParams p;
    switch (log_ots) {
      case 20:
        p = {"2^20", 1221516, 168000, 480, 4096, 139.8};
        break;
      case 21:
        p = {"2^21", 2365652, 262000, 600, 4096, 141.8};
        break;
      case 22:
        p = {"2^22", 4531924, 328000, 740, 8192, 132.3};
        break;
      case 23:
        p = {"2^23", 8866608, 452000, 1024, 8192, 130.2};
        break;
      case 24:
        p = {"2^24", 17262496, 480000, 2100, 8192, 135.4};
        break;
      default:
        IRONMAN_FATAL("no Table 4 parameter set for 2^%d OTs", log_ots);
    }
    return p;
}

std::vector<FerretParams>
allPaperParamSets()
{
    std::vector<FerretParams> sets;
    for (int lg = 20; lg <= 24; ++lg)
        sets.push_back(paperParamSet(lg));
    return sets;
}

FerretParams
tinyTestParams()
{
    FerretParams p;
    p.name = "tiny";
    p.n = 12800;
    p.k = 1024;
    p.t = 20;
    p.paperEll = 1024;
    p.paperBitSec = 0.0;
    return p;
}

FerretParams
tinyAlignedParams()
{
    FerretParams p = tinyTestParams();
    p.name = "tiny-aligned";
    p.n = p.t * p.treeLeaves(); // bucketSize() == treeLeaves() == 1024
    return p;
}

} // namespace ironman::ot
