#include "ot/ot_workspace.h"

#include <algorithm>

#include "common/logging.h"

namespace ironman::ot {

Block *
BlockArena::alloc(size_t n)
{
    IRONMAN_CHECK(next + n <= storage.size(), "arena overflow");
    Block *p = storage.data() + next;
    next += n;
    return p;
}

namespace {

/** The fields extension sizing depends on. */
bool
sameShape(const FerretParams &a, const FerretParams &b)
{
    return a.n == b.n && a.k == b.k && a.t == b.t &&
           a.arity == b.arity && a.prg == b.prg &&
           a.lpnWeight == b.lpnWeight && a.lpnSeed == b.lpnSeed;
}

} // namespace

size_t
OtWorkspace::requiredBlocks(const FerretParams &p, int leaf_slots,
                            bool scatter_free)
{
    if (scatter_free && scatterFreeFeed(p))
        return size_t(leaf_slots) * p.t * p.treeLeaves();
    return size_t(leaf_slots) * p.t * p.treeLeaves() + p.n;
}

void
OtWorkspace::prepare(const FerretParams &p, int threads, int leaf_slots,
                     bool scatter_free)
{
    threads = std::max(threads, 1);
    leaf_slots = std::clamp(leaf_slots, 1, 2);
    scatter_free = scatter_free && scatterFreeFeed(p);
    if (ready && sameShape(preparedFor, p) &&
        preparedThreads == threads && preparedSlots == leaf_slots &&
        scatterFreeActive == scatter_free)
        return;

    pool.resize(threads);

    arena.reserve(requiredBlocks(p, leaf_slots, scatter_free));
    leaf[0] = arena.alloc(p.t * p.treeLeaves());
    leaf[1] = leaf_slots == 2 ? arena.alloc(p.t * p.treeLeaves())
                              : nullptr;
    // Scatter-free: every bucket is one whole tree (t*l >= n), so the
    // leaf slots ARE the row vectors — no separate staging rows, no
    // leaf -> rows pass (invariant 11: a slot's rows may be encoded in
    // place only after its transcript stage completed, and the other
    // slot receives the next transcript).
    rows = scatter_free ? leaf[0] : arena.alloc(p.n);
    scatterFreeActive = scatter_free;

    // The SPCOT workspace sizes itself per role on the first
    // spcotSend*/spcotRecv* call (still warm-up, and it avoids
    // allocating the other role's buffer set).
    lpn.resize(threads);
    alphas.resize(p.t);

    ready = true;
    preparedFor = p;
    preparedThreads = threads;
    preparedSlots = leaf_slots;
}

} // namespace ironman::ot
