#include "ot/ot_workspace.h"

#include <algorithm>

#include "common/logging.h"

namespace ironman::ot {

Block *
BlockArena::alloc(size_t n)
{
    IRONMAN_CHECK(next + n <= storage.size(), "arena overflow");
    Block *p = storage.data() + next;
    next += n;
    return p;
}

namespace {

/** The fields extension sizing depends on. */
bool
sameShape(const FerretParams &a, const FerretParams &b)
{
    return a.n == b.n && a.k == b.k && a.t == b.t &&
           a.arity == b.arity && a.prg == b.prg &&
           a.lpnWeight == b.lpnWeight && a.lpnSeed == b.lpnSeed;
}

} // namespace

size_t
OtWorkspace::requiredBlocks(const FerretParams &p, int leaf_slots)
{
    return size_t(leaf_slots) * p.t * p.treeLeaves() + p.n;
}

void
OtWorkspace::prepare(const FerretParams &p, int threads, int leaf_slots)
{
    threads = std::max(threads, 1);
    leaf_slots = std::clamp(leaf_slots, 1, 2);
    if (ready && sameShape(preparedFor, p) &&
        preparedThreads == threads && preparedSlots == leaf_slots)
        return;

    pool.resize(threads);

    arena.reserve(requiredBlocks(p, leaf_slots));
    leaf[0] = arena.alloc(p.t * p.treeLeaves());
    leaf[1] = leaf_slots == 2 ? arena.alloc(p.t * p.treeLeaves())
                              : nullptr;
    rows = arena.alloc(p.n);

    // The SPCOT workspace sizes itself per role on the first
    // spcotSend*/spcotRecv* call (still warm-up, and it avoids
    // allocating the other role's buffer set).
    lpn.resize(threads);
    alphas.resize(p.t);

    ready = true;
    preparedFor = p;
    preparedThreads = threads;
    preparedSlots = leaf_slots;
}

} // namespace ironman::ot
