/**
 * @file
 * Batched SPCOT (single-point correlated OT), Sec. 2.3.1 and 4 of the
 * paper.
 *
 * One SPCOT instance over a tree with l leaves gives:
 *   sender:   w_0..w_{l-1}  (the GGM leaves) and its global Delta
 *   receiver: alpha, v_0..v_{l-1}  with  w_j = v_j ^ (j==alpha)*Delta
 *
 * Per tree level of arity m the receiver obtains all child-slot sums
 * except the one at its path digit:
 *   - m == 2: one chosen 1-of-2 OT on (K_0, K_1), choice = !digit
 *             (consumes 1 base COT);
 *   - m  > 2: an (m-1)-out-of-m OT built from an m-leaf binary
 *             mini-GGM tree (Sec. 4.2): log2(m) chosen OTs deliver the
 *             mini level sums, the mini leaves r_c then pad the real
 *             sums (y_c = K_c ^ H(r_c)). Consumes log2(m) base COTs.
 *
 * Every OT of every level of every tree is batched into a single
 * round: the receiver's choices depend only on its alphas, never on
 * sender data, so the whole batched SPCOT costs one round trip plus
 * one sender->receiver flush (matching Ferret's low-round design —
 * this is what makes the WAN rows of Fig. 7(c) flat in tree depth).
 *
 * Base-COT consumption per tree is exactly log2(l) independent of m.
 *
 * All mini-leaf pads of one tree occupy a contiguous tweak range
 * [sum_base + tr*sumsPerTree, ...), so each tree's hashing is ONE
 * Crhf::hashBatch call (fused 8-wide MMO on AES-NI) instead of a
 * scalar hash per leaf.
 *
 * The protocol is split into pipeline stages:
 *   - sender: spcotSendTranscript() expands the trees and pushes the
 *     whole transcript (chosen-OT ciphertexts + masked sums) — with a
 *     pool, or serially when the pool is busy with the previous
 *     iteration's LPN encode;
 *   - receiver: spcotRecvSendChoices() (derandomization bits out;
 *     needs only choice BITS of the base COTs), then
 *     spcotRecvRecvTranscript() (pull ciphertexts + masked sums into a
 *     SpcotRecvSlot), then spcotRecvFinish() (unmask with the base COT
 *     STRINGS and reconstruct the punctured trees).
 * Two slots let the FERRET engine receive iteration i+1's transcript
 * while iteration i is still being consumed. spcotSendInto() /
 * spcotRecvInto() compose the stages back to back (the unpipelined
 * path); both are zero-heap-allocation once the workspace is warm.
 */

#ifndef IRONMAN_OT_SPCOT_H
#define IRONMAN_OT_SPCOT_H

#include <cstdint>
#include <memory>
#include <vector>

#include "common/bitvec.h"
#include "common/block.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "crypto/crhf.h"
#include "crypto/prg.h"
#include "net/channel.h"
#include "ot/chosen_ot.h"
#include "ot/ggm_tree.h"

namespace ironman::ot {

/** Shape of every tree in a batched SPCOT execution. */
struct SpcotConfig
{
    size_t numLeaves = 4096;                      ///< l (power of two)
    unsigned arity = 4;                           ///< m (power of two)
    crypto::PrgKind prg = crypto::PrgKind::ChaCha8;

    bool
    operator==(const SpcotConfig &o) const
    {
        return numLeaves == o.numLeaves && arity == o.arity &&
               prg == o.prg;
    }

    /** Per-level arities (mixed radix; see treeArities()). */
    std::vector<unsigned> levelArities() const;

    /** Base COTs consumed per tree: log2(numLeaves). */
    size_t cotsPerTree() const;
};

/**
 * Derived constants of one tree shape: the flattened level-sum layout
 * plus, per level, the offsets of its OT instances, masked sums and
 * hash tweaks within a tree's region of the batched transcript. All
 * offsets are tree-independent, which is what lets every tree be
 * processed in parallel against precomputed transcript positions.
 */
struct SpcotShape
{
    SpcotConfig cfg;
    std::vector<unsigned> arities;
    GgmSumLayout layout;              ///< main-tree level sums
    size_t leaves = 0;
    size_t cotsPerTree = 0;           ///< OT instances per tree
    size_t sumsPerTree = 0;           ///< masked sums (= tweaks) per tree
    size_t extraPerTree = 0;          ///< extra blocks per tree (sums + 1)
    size_t wideLevels = 0;            ///< levels with arity > 2
    std::vector<uint32_t> instOffset; ///< per level: OT-instance offset
    std::vector<uint32_t> sumOffset;  ///< per level: masked-sum offset
    std::vector<int> miniIndex;       ///< per level: wide ordinal or -1
    std::vector<GgmSumLayout> miniLayout; ///< per level (wide only)

    void prepare(const SpcotConfig &config);
};

/**
 * One pending receiver-side transcript: everything pulled off the wire
 * for a batch whose punctured trees have not been reconstructed yet.
 * The FERRET pipeline keeps two of these (in SpcotWorkspace) so slot
 * N can fill while slot N-1 is consumed. Buffers grow once and are
 * reused.
 */
struct SpcotRecvSlot
{
    std::vector<size_t> alphas;   ///< punctured index per tree
    std::vector<unsigned> digits; ///< trees x levels mixed-radix digits
    BitVec choices;               ///< chosen-OT choice bits
    std::vector<Block> extra;     ///< masked sums + recovery blocks
    ChosenOtScratch ot;           ///< d bits + ciphertext staging
    uint64_t tweakBase = 0;       ///< chosen-OT tweaks of this batch
    uint64_t sumBase = 0;         ///< masked-sum tweaks of this batch
};

/**
 * Reusable state of a batched SPCOT endpoint: transcript buffers plus
 * one expansion context per pool worker. Grow-only; prepare() is
 * idempotent for a fixed (config, trees, threads).
 *
 * Trees are processed in cross-tree chunks of kBatchTrees: all trees
 * of a chunk expand/reconstruct level-synchronously (one SeedExpander
 * call per level per chunk, see ggmExpandBatchInto) and hash their
 * mini-leaf pads in ONE Crhf::hashBatch call (the per-tree tweak
 * ranges are contiguous by construction). Chunking bounds the
 * per-worker matrices to kBatchTrees * leaves blocks while still
 * giving the SIMD PRG cores full batches at the narrow top levels.
 */
struct SpcotWorkspace
{
    /** Cross-tree batch width of the level-synchronous GGM paths. */
    static constexpr size_t kBatchTrees = 32;

    /** Per-worker expansion context (expanders carry mutable state). */
    struct Worker
    {
        GgmBatchScratch batch;     ///< main-tree cross-tree matrices
        GgmBatchScratch miniBatch; ///< mini-tree cross-tree matrices
        std::vector<Block> levelSums;  ///< sender: chunk x main K keys
        std::vector<Block> leafSums;   ///< sender: chunk leaf sums
        std::vector<Block> knownSums;  ///< receiver: chunk x unmasked sums
        std::vector<Block> miniSums;   ///< sender: chunk x mini K keys
        std::vector<Block> miniKnown;  ///< receiver: chunk x mini sums
        std::vector<Block> miniSeedStage;  ///< sender: gathered seeds
        std::vector<size_t> miniAlphaStage; ///< receiver: per-level digits
        std::vector<Block> miniLeavesAll; ///< chunk x all mini leaves
        std::vector<Block> hashPads;      ///< batched H of miniLeavesAll
        std::unique_ptr<crypto::SeedExpander> mainPrg;
        std::unique_ptr<crypto::SeedExpander> miniPrg;
    };

    /**
     * Size everything one endpoint role needs (@p for_sender picks
     * the sender or receiver buffer set; the shared buffers are
     * always sized). Idempotent per (config, trees, threads, role).
     */
    void prepare(const SpcotConfig &config, size_t num_trees,
                 int threads, bool for_sender);

    /** Sum of all workers' PRG operation counters. */
    uint64_t prgOps() const;

    SpcotShape shape;
    crypto::Crhf crhf;

    std::vector<Block> seeds;     ///< sender: per-tree main seeds
    std::vector<Block> miniSeeds; ///< sender: per-tree mini seeds
    std::vector<Block> otM0, otM1; ///< sender OT messages
    std::vector<Block> otOut;     ///< receiver OT results (transient)
    std::vector<Block> extra;     ///< sender: masked sums + recovery
    ChosenOtScratch ot;           ///< sender chosen-OT staging

    SpcotRecvSlot slots[2];       ///< receiver transcript slots

    std::vector<Worker> workers;

  private:
    bool ready = false;
    bool senderReady = false;
    bool receiverReady = false;
    size_t preparedTrees = 0;
    int preparedThreads = 0;
};

/**
 * Sender side of a batched SPCOT over @p num_trees trees, writing tree
 * tr's leaves to w[tr*cfg.numLeaves ...] and pushing the whole
 * transcript. Zero heap allocation once @p ws is warm.
 *
 * @param q Base-COT sender strings, num_trees*cotsPerTree() entries,
 *          consumed in traversal order (must mirror the receiver).
 * @param rng Source of the tree and mini-tree seeds.
 * @param tweak In/out hash-tweak counter shared by both parties.
 * @param pool Worker pool splitting trees into contiguous ranges, or
 *             nullptr to expand serially on the calling thread (used
 *             while the pool runs the previous iteration's LPN).
 *             Output is bit-identical either way.
 * @param prg_ops If non-null, receives the PRG invocation count.
 */
void spcotSendTranscript(net::Channel &ch, const SpcotConfig &cfg,
                         size_t num_trees, const Block &delta,
                         const Block *q, Rng &rng, uint64_t &tweak,
                         common::ThreadPool *pool, SpcotWorkspace &ws,
                         Block *w, uint64_t *prg_ops);

/** Sender stage composition under the historical name. */
void spcotSendInto(net::Channel &ch, const SpcotConfig &cfg,
                   size_t num_trees, const Block &delta, const Block *q,
                   Rng &rng, uint64_t &tweak, common::ThreadPool &pool,
                   SpcotWorkspace &ws, Block *w, uint64_t *prg_ops);

/**
 * Receiver stage 1: derive the mixed-radix digits and chosen-OT
 * choices from @p alphas, send the derandomization bits (consuming
 * base-COT choice bits b[b_offset ...]), and advance the shared tweak
 * counter. Records everything stage 3 needs in @p slot.
 */
void spcotRecvSendChoices(net::Channel &ch, const SpcotConfig &cfg,
                          size_t num_trees, const size_t *alphas,
                          const BitVec &b, size_t b_offset,
                          uint64_t &tweak, SpcotWorkspace &ws,
                          SpcotRecvSlot &slot);

/** Receiver stage 2: pull ciphertexts + masked sums into @p slot. */
void spcotRecvRecvTranscript(net::Channel &ch, const SpcotConfig &cfg,
                             size_t num_trees, SpcotWorkspace &ws,
                             SpcotRecvSlot &slot);

/**
 * Receiver stage 3: unmask the chosen-OT outputs with the base-COT
 * strings @p t (num_trees*cotsPerTree() entries), reconstruct every
 * punctured tree, and write tree tr's leaf vector to
 * v[tr*cfg.numLeaves ...].
 */
void spcotRecvFinish(const SpcotConfig &cfg, size_t num_trees,
                     const Block *t, common::ThreadPool &pool,
                     SpcotWorkspace &ws, SpcotRecvSlot &slot, Block *v,
                     uint64_t *prg_ops);

/** Receiver stage composition (slot 0) under the historical name. */
void spcotRecvInto(net::Channel &ch, const SpcotConfig &cfg,
                   size_t num_trees, const size_t *alphas, const BitVec &b,
                   size_t b_offset, const Block *t, uint64_t &tweak,
                   common::ThreadPool &pool, SpcotWorkspace &ws, Block *v,
                   uint64_t *prg_ops);

} // namespace ironman::ot

#endif // IRONMAN_OT_SPCOT_H
