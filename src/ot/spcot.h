/**
 * @file
 * Batched SPCOT (single-point correlated OT), Sec. 2.3.1 and 4 of the
 * paper.
 *
 * One SPCOT instance over a tree with l leaves gives:
 *   sender:   w_0..w_{l-1}  (the GGM leaves) and its global Delta
 *   receiver: alpha, v_0..v_{l-1}  with  w_j = v_j ^ (j==alpha)*Delta
 *
 * Per tree level of arity m the receiver obtains all child-slot sums
 * except the one at its path digit:
 *   - m == 2: one chosen 1-of-2 OT on (K_0, K_1), choice = !digit
 *             (consumes 1 base COT);
 *   - m  > 2: an (m-1)-out-of-m OT built from an m-leaf binary
 *             mini-GGM tree (Sec. 4.2): log2(m) chosen OTs deliver the
 *             mini level sums, the mini leaves r_c then pad the real
 *             sums (y_c = K_c ^ H(r_c)). Consumes log2(m) base COTs.
 *
 * Every OT of every level of every tree is batched into a single
 * round: the receiver's choices depend only on its alphas, never on
 * sender data, so the whole batched SPCOT costs one round trip plus
 * one sender->receiver flush (matching Ferret's low-round design —
 * this is what makes the WAN rows of Fig. 7(c) flat in tree depth).
 *
 * Base-COT consumption per tree is exactly log2(l) independent of m.
 */

#ifndef IRONMAN_OT_SPCOT_H
#define IRONMAN_OT_SPCOT_H

#include <cstdint>
#include <vector>

#include "common/bitvec.h"
#include "common/block.h"
#include "common/rng.h"
#include "common/stats.h"
#include "crypto/prg.h"
#include "net/channel.h"

namespace ironman::ot {

/** Shape of every tree in a batched SPCOT execution. */
struct SpcotConfig
{
    size_t numLeaves = 4096;                      ///< l (power of two)
    unsigned arity = 4;                           ///< m (power of two)
    crypto::PrgKind prg = crypto::PrgKind::ChaCha8;

    /** Per-level arities (mixed radix; see treeArities()). */
    std::vector<unsigned> levelArities() const;

    /** Base COTs consumed per tree: log2(numLeaves). */
    size_t cotsPerTree() const;
};

/** Sender output of a batched SPCOT. */
struct SpcotSenderOutput
{
    /// w[tree][leaf] — the expanded GGM leaves.
    std::vector<std::vector<Block>> w;
    /// PRG primitive invocations (for the Fig. 7(a) operation counts).
    uint64_t prgOps = 0;
};

/** Receiver output of a batched SPCOT. */
struct SpcotReceiverOutput
{
    /// v[tree][leaf]; v = w except v[alpha] = w[alpha] ^ Delta.
    std::vector<std::vector<Block>> v;
    std::vector<size_t> alpha;
    uint64_t prgOps = 0;
};

/**
 * Sender side of a batched SPCOT over @p num_trees trees.
 *
 * @param q Base-COT sender strings, num_trees*cotsPerTree() entries,
 *          consumed in traversal order (must mirror the receiver).
 * @param rng Source of the tree and mini-tree seeds.
 * @param tweak In/out hash-tweak counter shared by both parties.
 */
SpcotSenderOutput
spcotSend(net::Channel &ch, const SpcotConfig &cfg, size_t num_trees,
          const Block &delta, const Block *q, Rng &rng, uint64_t &tweak);

/**
 * Receiver side of a batched SPCOT.
 *
 * @param alphas Punctured index per tree, each < cfg.numLeaves.
 * @param b,b_offset,t Base-COT receiver view (choice bits + strings),
 *        consumed from @p b_offset in the same order as the sender.
 */
SpcotReceiverOutput
spcotRecv(net::Channel &ch, const SpcotConfig &cfg, size_t num_trees,
          const std::vector<size_t> &alphas, const BitVec &b,
          size_t b_offset, const Block *t, uint64_t &tweak);

} // namespace ironman::ot

#endif // IRONMAN_OT_SPCOT_H
