/**
 * @file
 * Chosen-message 1-out-of-2 OT from COT correlations (Fig. 2).
 *
 * Given one COT correlation (q / b, t = q ^ b*Delta) and the MMO
 * correlation-robust hash H, a chosen OT of the pair (m0, m1) with
 * receiver choice c costs one bit receiver->sender and two blocks
 * sender->receiver:
 *
 *   R->S:  d = c ^ b
 *   S->R:  e_j = m_j ^ H(q ^ (j^d)*Delta, tweak)   for j in {0,1}
 *   R:     m_c = e_c ^ H(t, tweak)
 *
 * The batch API moves all bits, then all ciphertexts, in single
 * messages so a batch is one round regardless of size; all pad hashes
 * go through Crhf::hashBatch (fused 8-wide MMO on AES-NI).
 *
 * The receiver side is additionally split into a wire stage
 * (chosenOtRecvWire: send d, receive the ciphertexts) and a compute
 * stage (chosenOtRecvFinish: hash t, unmask). The FERRET iteration
 * pipeline exploits the split: the wire stage of extension i+1 needs
 * only choice bits, while the unmask needs base strings that extension
 * i's LPN encode is still producing.
 */

#ifndef IRONMAN_OT_CHOSEN_OT_H
#define IRONMAN_OT_CHOSEN_OT_H

#include <cstdint>
#include <vector>

#include "common/bitvec.h"
#include "common/block.h"
#include "crypto/crhf.h"
#include "net/channel.h"
#include "ot/cot.h"

namespace ironman::ot {

/**
 * Reusable buffers for the batched chosen-OT endpoints. Grow-only, so
 * steady-state batches of a stable size allocate nothing.
 */
struct ChosenOtScratch
{
    BitVec d;                  ///< derandomization bits on the wire
    std::vector<Block> cipher; ///< ciphertext pairs on the wire
    std::vector<Block> pad0;   ///< batched H inputs/outputs (j = 0)
    std::vector<Block> pad1;   ///< batched H inputs/outputs (j = 1)
    std::vector<uint8_t> packed; ///< width-packed ciphertext lanes
};

/**
 * Sender side of a batched chosen OT. Wire buffers live in @p scratch;
 * allocation-free once warm.
 *
 * @param ch Channel to the receiver.
 * @param m0,m1 Message arrays, @p n each.
 * @param delta COT offset.
 * @param q Sender COT strings (n of them, consumed).
 * @param tweak_base Hash tweaks; instance i uses tweak_base + i.
 */
void chosenOtSend(net::Channel &ch, const crypto::Crhf &crhf,
                  const Block *m0, const Block *m1, size_t n,
                  const Block &delta, const Block *q, uint64_t tweak_base,
                  ChosenOtScratch &scratch);

/**
 * Receiver wire stage, outbound half: send the derandomization bits
 * d = choices ^ b. Depends only on bits — no COT strings needed yet.
 */
void chosenOtRecvSendDerand(net::Channel &ch, const BitVec &choices,
                            const BitVec &b, size_t b_offset, size_t n,
                            ChosenOtScratch &scratch);

/** Receiver wire stage, inbound half: the 2n ciphertexts into
 * scratch.cipher. */
void chosenOtRecvCiphertexts(net::Channel &ch, size_t n,
                             ChosenOtScratch &scratch);

/** Both wire halves back to back. */
void chosenOtRecvWire(net::Channel &ch, const BitVec &choices,
                      const BitVec &b, size_t b_offset, size_t n,
                      ChosenOtScratch &scratch);

/**
 * Receiver compute stage: batch-hash the COT strings @p t and unmask
 * the chosen ciphertext of each pair received by chosenOtRecvWire()
 * into @p out.
 */
void chosenOtRecvFinish(const crypto::Crhf &crhf, const BitVec &choices,
                        const Block *t, size_t n, Block *out,
                        uint64_t tweak_base, ChosenOtScratch &scratch);

/** Both receiver stages back to back (the unpipelined path). */
void chosenOtRecv(net::Channel &ch, const crypto::Crhf &crhf,
                  const BitVec &choices, const BitVec &b, size_t b_offset,
                  const Block *t, size_t n, Block *out, uint64_t tweak_base,
                  ChosenOtScratch &scratch);

// ---------------------------------------------------------------------------
// Width-packed wire variants
// ---------------------------------------------------------------------------
//
// Same OT algebra, lean wire: the pads are still full-Block CRHF
// hashes of the COT strings (so packed and unpacked runs consume the
// SAME correlations and produce the SAME plaintexts), but only the
// low wire_width bits of each masked message travel — ciphertexts as
// 2n contiguous wire_width-bit LSB-first lanes, derandomization bits
// as ceil(n/8) raw bytes. Neither direction carries a length prefix:
// n and wire_width are protocol state both ends already agree on.
// Truncating e_j = m_j ^ H(...) to wire_width bits commutes with the
// receiver's XOR unmask, so out[i].lo holds exactly the low
// wire_width bits of the chosen message (out[i].hi = 0); callers that
// only consume those bits (GMW AND at width 1, MUX at the fixed-point
// width) decode bit-identically to the unpacked path.

/** Packed sender: recv raw derand bits, send 2n wire_width-bit lanes. */
void chosenOtSendPacked(net::Channel &ch, const crypto::Crhf &crhf,
                        const Block *m0, const Block *m1, size_t n,
                        unsigned wire_width, const Block &delta,
                        const Block *q, uint64_t tweak_base,
                        ChosenOtScratch &scratch);

/** Packed derand send: ceil(n/8) raw bytes, no length prefix. */
void chosenOtRecvSendDerandPacked(net::Channel &ch, const BitVec &choices,
                                  const BitVec &b, size_t b_offset,
                                  size_t n, ChosenOtScratch &scratch);

/** Packed inbound half: the 2n lanes into scratch.packed. */
void chosenOtRecvCiphertextsPacked(net::Channel &ch, size_t n,
                                   unsigned wire_width,
                                   ChosenOtScratch &scratch);

/** Packed compute stage: unmask the chosen lane of each pair. */
void chosenOtRecvFinishPacked(const crypto::Crhf &crhf,
                              const BitVec &choices, const Block *t,
                              size_t n, unsigned wire_width, Block *out,
                              uint64_t tweak_base,
                              ChosenOtScratch &scratch);

/** Packed receiver, both stages back to back. */
void chosenOtRecvPacked(net::Channel &ch, const crypto::Crhf &crhf,
                        const BitVec &choices, const BitVec &b,
                        size_t b_offset, const Block *t, size_t n,
                        unsigned wire_width, Block *out,
                        uint64_t tweak_base, ChosenOtScratch &scratch);

} // namespace ironman::ot

#endif // IRONMAN_OT_CHOSEN_OT_H
