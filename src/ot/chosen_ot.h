/**
 * @file
 * Chosen-message 1-out-of-2 OT from COT correlations (Fig. 2).
 *
 * Given one COT correlation (q / b, t = q ^ b*Delta) and the MMO
 * correlation-robust hash H, a chosen OT of the pair (m0, m1) with
 * receiver choice c costs one bit receiver->sender and two blocks
 * sender->receiver:
 *
 *   R->S:  d = c ^ b
 *   S->R:  e_j = m_j ^ H(q ^ (j^d)*Delta, tweak)   for j in {0,1}
 *   R:     m_c = e_c ^ H(t, tweak)
 *
 * The batch API moves all bits, then all ciphertexts, in single
 * messages so a batch is one round regardless of size.
 */

#ifndef IRONMAN_OT_CHOSEN_OT_H
#define IRONMAN_OT_CHOSEN_OT_H

#include <cstdint>
#include <vector>

#include "common/bitvec.h"
#include "common/block.h"
#include "crypto/crhf.h"
#include "net/channel.h"
#include "ot/cot.h"

namespace ironman::ot {

/**
 * Reusable buffers for the batched chosen-OT endpoints. Grow-only, so
 * steady-state batches of a stable size allocate nothing.
 */
struct ChosenOtScratch
{
    BitVec d;                  ///< derandomization bits on the wire
    std::vector<Block> cipher; ///< ciphertext pairs on the wire
};

/**
 * Sender side of a batched chosen OT.
 *
 * @param ch Channel to the receiver.
 * @param m0,m1 Message arrays, @p n each.
 * @param delta COT offset.
 * @param q Sender COT strings (n of them, consumed).
 * @param tweak_base Hash tweaks; instance i uses tweak_base + i.
 */
void chosenOtSend(net::Channel &ch, const crypto::Crhf &crhf,
                  const Block *m0, const Block *m1, size_t n,
                  const Block &delta, const Block *q, uint64_t tweak_base);

/** Allocation-free variant: wire buffers live in @p scratch. */
void chosenOtSend(net::Channel &ch, const crypto::Crhf &crhf,
                  const Block *m0, const Block *m1, size_t n,
                  const Block &delta, const Block *q, uint64_t tweak_base,
                  ChosenOtScratch &scratch);

/**
 * Receiver side of a batched chosen OT.
 *
 * @param choices Receiver's selection bits (n of them).
 * @param b COT choice bits (n, consumed, offset @p b_offset).
 * @param t Receiver COT strings (n, consumed).
 * @param out Receives m_{c_i}.
 */
void chosenOtRecv(net::Channel &ch, const crypto::Crhf &crhf,
                  const BitVec &choices, const BitVec &b, size_t b_offset,
                  const Block *t, size_t n, Block *out, uint64_t tweak_base);

/** Allocation-free variant: wire buffers live in @p scratch. */
void chosenOtRecv(net::Channel &ch, const crypto::Crhf &crhf,
                  const BitVec &choices, const BitVec &b, size_t b_offset,
                  const Block *t, size_t n, Block *out, uint64_t tweak_base,
                  ChosenOtScratch &scratch);

} // namespace ironman::ot

#endif // IRONMAN_OT_CHOSEN_OT_H
