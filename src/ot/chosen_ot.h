/**
 * @file
 * Chosen-message 1-out-of-2 OT from COT correlations (Fig. 2).
 *
 * Given one COT correlation (q / b, t = q ^ b*Delta) and the MMO
 * correlation-robust hash H, a chosen OT of the pair (m0, m1) with
 * receiver choice c costs one bit receiver->sender and two blocks
 * sender->receiver:
 *
 *   R->S:  d = c ^ b
 *   S->R:  e_j = m_j ^ H(q ^ (j^d)*Delta, tweak)   for j in {0,1}
 *   R:     m_c = e_c ^ H(t, tweak)
 *
 * The batch API moves all bits, then all ciphertexts, in single
 * messages so a batch is one round regardless of size; all pad hashes
 * go through Crhf::hashBatch (fused 8-wide MMO on AES-NI).
 *
 * The receiver side is additionally split into a wire stage
 * (chosenOtRecvWire: send d, receive the ciphertexts) and a compute
 * stage (chosenOtRecvFinish: hash t, unmask). The FERRET iteration
 * pipeline exploits the split: the wire stage of extension i+1 needs
 * only choice bits, while the unmask needs base strings that extension
 * i's LPN encode is still producing.
 */

#ifndef IRONMAN_OT_CHOSEN_OT_H
#define IRONMAN_OT_CHOSEN_OT_H

#include <cstdint>
#include <vector>

#include "common/bitvec.h"
#include "common/block.h"
#include "crypto/crhf.h"
#include "net/channel.h"
#include "ot/cot.h"

namespace ironman::ot {

/**
 * Reusable buffers for the batched chosen-OT endpoints. Grow-only, so
 * steady-state batches of a stable size allocate nothing.
 */
struct ChosenOtScratch
{
    BitVec d;                  ///< derandomization bits on the wire
    std::vector<Block> cipher; ///< ciphertext pairs on the wire
    std::vector<Block> pad0;   ///< batched H inputs/outputs (j = 0)
    std::vector<Block> pad1;   ///< batched H inputs/outputs (j = 1)
};

/**
 * Sender side of a batched chosen OT. Wire buffers live in @p scratch;
 * allocation-free once warm.
 *
 * @param ch Channel to the receiver.
 * @param m0,m1 Message arrays, @p n each.
 * @param delta COT offset.
 * @param q Sender COT strings (n of them, consumed).
 * @param tweak_base Hash tweaks; instance i uses tweak_base + i.
 */
void chosenOtSend(net::Channel &ch, const crypto::Crhf &crhf,
                  const Block *m0, const Block *m1, size_t n,
                  const Block &delta, const Block *q, uint64_t tweak_base,
                  ChosenOtScratch &scratch);

/**
 * Receiver wire stage, outbound half: send the derandomization bits
 * d = choices ^ b. Depends only on bits — no COT strings needed yet.
 */
void chosenOtRecvSendDerand(net::Channel &ch, const BitVec &choices,
                            const BitVec &b, size_t b_offset, size_t n,
                            ChosenOtScratch &scratch);

/** Receiver wire stage, inbound half: the 2n ciphertexts into
 * scratch.cipher. */
void chosenOtRecvCiphertexts(net::Channel &ch, size_t n,
                             ChosenOtScratch &scratch);

/** Both wire halves back to back. */
void chosenOtRecvWire(net::Channel &ch, const BitVec &choices,
                      const BitVec &b, size_t b_offset, size_t n,
                      ChosenOtScratch &scratch);

/**
 * Receiver compute stage: batch-hash the COT strings @p t and unmask
 * the chosen ciphertext of each pair received by chosenOtRecvWire()
 * into @p out.
 */
void chosenOtRecvFinish(const crypto::Crhf &crhf, const BitVec &choices,
                        const Block *t, size_t n, Block *out,
                        uint64_t tweak_base, ChosenOtScratch &scratch);

/** Both receiver stages back to back (the unpipelined path). */
void chosenOtRecv(net::Channel &ch, const crypto::Crhf &crhf,
                  const BitVec &choices, const BitVec &b, size_t b_offset,
                  const Block *t, size_t n, Block *out, uint64_t tweak_base,
                  ChosenOtScratch &scratch);

} // namespace ironman::ot

#endif // IRONMAN_OT_CHOSEN_OT_H
