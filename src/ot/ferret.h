/**
 * @file
 * Ferret-style PCG OT extension (Sec. 2.3): the end-to-end protocol
 * that turns a reserve of base COTs into n fresh COT correlations per
 * execution, with sub-linear communication.
 *
 * One extension (both parties):
 *   1. Split the base reserve: k correlations feed the LPN input,
 *      t*log2(l) feed the batched SPCOT.
 *   2. Interactive SPCOT produces t single-point vectors covering the
 *      n output rows (regular noise: row j belongs to bucket
 *      j / bucketSize()).
 *   3. Local LPN encoding: z = r*A ^ w (sender) / x = e*A ^ u,
 *      y = s*A ^ v (receiver).
 *   4. Bootstrap: the first reservedCots() outputs become the next
 *      base reserve; the remaining usableOts() are handed out.
 *
 * Each endpoint owns an OtWorkspace (arena + fixed thread pool), so
 * the span-based extendInto() entry points perform zero heap
 * allocations once warm and fan the SPCOT/LPN kernels out over
 * setThreads() workers with bit-identical output. The historical
 * vector-returning extend() wrappers remain.
 *
 * Semi-honest security (the paper's frameworks are semi-honest);
 * Ferret's malicious consistency check is out of scope and noted in
 * DESIGN.md.
 */

#ifndef IRONMAN_OT_FERRET_H
#define IRONMAN_OT_FERRET_H

#include <cstdint>
#include <vector>

#include "common/bitvec.h"
#include "common/block.h"
#include "common/rng.h"
#include "common/stats.h"
#include "net/channel.h"
#include "ot/cot.h"
#include "ot/ferret_params.h"
#include "ot/lpn.h"
#include "ot/ot_workspace.h"

namespace ironman::ot {

/** Sender half of the OTE protocol. */
class FerretCotSender
{
  public:
    /**
     * @param base Base-COT sender strings; at least
     *        params.reservedCots() entries (from dealBaseCots() or a
     *        previous run).
     */
    FerretCotSender(net::Channel &ch, const FerretParams &params,
                    const Block &delta, std::vector<Block> base);

    /**
     * Run one extension, writing usableOts() fresh sender strings
     * (each defines the pair (q_i, q_i ^ delta)) to @p out. Performs
     * no heap allocation once the workspace is warm.
     */
    void extendInto(Rng &rng, Block *out);

    /** Vector-returning wrapper around extendInto(). */
    std::vector<Block> extend(Rng &rng);

    const Block &delta() const { return delta_; }
    const FerretParams &params() const { return p; }

    /** Fixed worker-pool width for the SPCOT and LPN kernels. */
    void setThreads(int n) { threads = n > 1 ? n : 1; }

    /** Counters: prg ops, lpn AES ops, per-phase microseconds. */
    const StatSet &stats() const { return stats_; }

  private:
    net::Channel &ch;
    FerretParams p;
    Block delta_;
    std::vector<Block> baseQ;
    LpnEncoder encoder;
    uint64_t tweak = 1;
    int threads = 1;
    OtWorkspace ws;
    StatSet stats_;
};

/** Receiver half of the OTE protocol. */
class FerretCotReceiver
{
  public:
    /** Receiver output of one extension. */
    struct Output
    {
        BitVec choice;          ///< x_i (pseudo-random choice bits)
        std::vector<Block> t;   ///< t_i = q_i ^ x_i*delta
    };

    FerretCotReceiver(net::Channel &ch, const FerretParams &params,
                      BitVec base_choice, std::vector<Block> base_t);

    /**
     * Run one extension: usableOts() choice bits into @p choice_out
     * (resized; storage reused across calls) and as many blocks into
     * @p t_out. Performs no heap allocation once warm.
     */
    void extendInto(Rng &rng, BitVec &choice_out, Block *t_out);

    /** Vector-returning wrapper around extendInto(). */
    Output extend(Rng &rng);

    const FerretParams &params() const { return p; }
    void setThreads(int n) { threads = n > 1 ? n : 1; }
    const StatSet &stats() const { return stats_; }

  private:
    net::Channel &ch;
    FerretParams p;
    BitVec baseChoice;
    std::vector<Block> baseT;
    LpnEncoder encoder;
    uint64_t tweak = 1;
    int threads = 1;
    OtWorkspace ws;
    StatSet stats_;
};

} // namespace ironman::ot

#endif // IRONMAN_OT_FERRET_H
