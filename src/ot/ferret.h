/**
 * @file
 * Ferret-style PCG OT extension (Sec. 2.3): the end-to-end protocol
 * that turns a reserve of base COTs into n fresh COT correlations per
 * execution, with sub-linear communication.
 *
 * One extension (both parties):
 *   1. Split the base reserve: k correlations feed the LPN input,
 *      t*log2(l) feed the batched SPCOT.
 *   2. Interactive SPCOT produces t single-point vectors covering the
 *      n output rows (regular noise: row j belongs to bucket
 *      j / bucketSize()).
 *   3. Local LPN encoding: z = r*A ^ w (sender) / x = e*A ^ u,
 *      y = s*A ^ v (receiver).
 *   4. Bootstrap: the first reservedCots() outputs become the next
 *      base reserve; the remaining usableOts() are handed out.
 *
 * In the default PIPELINED mode the engine overlaps consecutive
 * extensions: while iteration i's LPN encode runs on the pool
 * workers, iteration i+1's SPCOT transcript is already crossing the
 * wire on the calling thread (see DESIGN.md §2, "The iteration
 * pipeline"). The dependency that makes this legal:
 *
 *   - the sender's next transcript needs q' = z_i[k..reserved), so
 *     the reserve prefix of z is encoded eagerly before the output
 *     tail is handed to the workers;
 *   - the receiver's next derandomization bits need only the CHOICE
 *     BITS x_i (the cheap bit-LPN), while the unmask of the received
 *     ciphertexts — which needs the block reserve y_i — is deferred
 *     to the next call (SpcotRecvSlot holds the pending transcript).
 *
 * Pipelined output is bit-identical to unpipelined output for equal
 * RNG seeds (tests/test_ferret_pipeline.cpp): every value is computed
 * from the same inputs, just earlier. Both parties MUST run the same
 * mode — the pipelined peer leaves one prefetched transcript in
 * flight per steady-state call, which an unpipelined peer would never
 * answer. Between calls the channel is fully drained, so engines can
 * be multiplexed (ppml::FerretCotEngine interleaves two directions).
 *
 * Each endpoint owns an OtWorkspace (arena + fixed thread pool + the
 * precomputed LPN index tape), so extendInto() performs zero heap
 * allocations once warm and fans the SPCOT/LPN kernels out over
 * setThreads() workers with bit-identical output.
 *
 * Semi-honest security (the paper's frameworks are semi-honest);
 * Ferret's malicious consistency check is out of scope and noted in
 * DESIGN.md.
 */

#ifndef IRONMAN_OT_FERRET_H
#define IRONMAN_OT_FERRET_H

#include <cstdint>
#include <vector>

#include "common/bitvec.h"
#include "common/block.h"
#include "common/rng.h"
#include "common/stats.h"
#include "net/channel.h"
#include "ot/cot.h"
#include "ot/ferret_params.h"
#include "ot/lpn.h"
#include "ot/ot_workspace.h"

namespace ironman::ot {

/** Sender half of the OTE protocol. */
class FerretCotSender
{
  public:
    /**
     * @param base Base-COT sender strings; at least
     *        params.reservedCots() entries (from dealBaseCots() or a
     *        previous run).
     */
    FerretCotSender(net::Channel &ch, const FerretParams &params,
                    const Block &delta, std::vector<Block> base);

    /**
     * Unbound engine for warm pooling (svc::EnginePool): workspace and
     * tape can be prewarm()ed now, channel and base material arrive
     * per session via resetSession(). extendInto() before the first
     * resetSession() is a usage bug (checked).
     */
    explicit FerretCotSender(const FerretParams &params);

    /**
     * Bind this engine to a new session: fresh channel, offset and
     * base reserve; protocol state (tweak, pipeline slots, any
     * prefetched transcript of the previous session) is reset so the
     * engine behaves bit-identically to a freshly constructed one.
     * Allocation-free once the engine has run one warm extension
     * (DESIGN.md invariant 12) — the base reserve is copied into
     * retained storage.
     */
    void resetSession(net::Channel &ch, const Block &delta,
                      const Block *base, size_t n);

    /**
     * Pay the one-time sizing cost now instead of inside the first
     * extension: arena carve, worker pool spawn, LPN index tape build
     * (the dominant warm-up cost), staging reserves. Idempotent; an
     * EnginePool calls this so checked-out engines are already warm.
     */
    void prewarm();

    /**
     * Run one extension, writing usableOts() fresh sender strings
     * (each defines the pair (q_i, q_i ^ delta)) to @p out. Performs
     * no heap allocation once the workspace is warm.
     */
    void extendInto(Rng &rng, Block *out);

    const Block &delta() const { return delta_; }
    const FerretParams &params() const { return p; }

    /** Fixed worker-pool width for the SPCOT and LPN kernels. */
    void setThreads(int n) { threads = n > 1 ? n : 1; }

    /**
     * Toggle the iteration pipeline (default on). Must match the
     * receiver's setting; flip only between extensions, never while a
     * transcript is in flight.
     */
    void setPipelined(bool on) { pipelined_ = on; }
    bool pipelined() const { return pipelined_; }

    /**
     * Toggle the scatter-free LPN feed (default on; local-only, the
     * peer may differ). Effective only when bucketSize() ==
     * treeLeaves(): SPCOT then expands straight into the LPN row
     * vector and the leaf->rows pass disappears. Off forces the
     * copying feed (tests compare the two). Flip only between
     * extensions with no transcript in flight.
     */
    void setScatterFree(bool on) { scatterFree_ = on; }

    /** Counters: prg ops, lpn AES ops, per-phase microseconds. */
    const StatSet &stats() const { return stats_; }

  private:
    void ensureTape();

    net::Channel *ch = nullptr; ///< bound per session; never null in extendInto
    FerretParams p;
    Block delta_;
    std::vector<Block> baseQ;
    std::vector<Block> baseNext; ///< pipelined: next reserve staging
    LpnEncoder encoder;
    uint64_t tweak = 1;
    int threads = 1;
    bool pipelined_ = true;
    bool scatterFree_ = true;
    bool havePending = false; ///< leaf slot slotCur holds a transcript
    int slotCur = 0;
    OtWorkspace ws;
    StatSet stats_;
};

/** Receiver half of the OTE protocol. */
class FerretCotReceiver
{
  public:
    FerretCotReceiver(net::Channel &ch, const FerretParams &params,
                      BitVec base_choice, std::vector<Block> base_t);

    /** Unbound engine for warm pooling; see FerretCotSender. */
    explicit FerretCotReceiver(const FerretParams &params);

    /** Bind to a new session; see FerretCotSender::resetSession. */
    void resetSession(net::Channel &ch, const BitVec &base_choice,
                      const Block *base_t, size_t n);

    /** One-time sizing ahead of the first session; see FerretCotSender. */
    void prewarm();

    /**
     * Run one extension: usableOts() choice bits into @p choice_out
     * (resized; storage reused across calls) and as many blocks into
     * @p t_out. Performs no heap allocation once warm.
     */
    void extendInto(Rng &rng, BitVec &choice_out, Block *t_out);

    const FerretParams &params() const { return p; }
    void setThreads(int n) { threads = n > 1 ? n : 1; }

    /** Toggle the iteration pipeline; see FerretCotSender. */
    void setPipelined(bool on) { pipelined_ = on; }
    bool pipelined() const { return pipelined_; }

    /** Toggle the scatter-free LPN feed; see FerretCotSender. */
    void setScatterFree(bool on) { scatterFree_ = on; }

    const StatSet &stats() const { return stats_; }

  private:
    void ensureTape();

    net::Channel *ch = nullptr; ///< bound per session; never null in extendInto
    FerretParams p;
    BitVec baseChoice;
    BitVec choiceNext;       ///< pipelined: next choice reserve staging
    std::vector<Block> baseT;
    std::vector<Block> baseTNext; ///< pipelined: next reserve staging
    LpnEncoder encoder;
    uint64_t tweak = 1;
    int threads = 1;
    bool pipelined_ = true;
    bool scatterFree_ = true;
    bool havePending = false; ///< slots[slotCur] holds a transcript
    int slotCur = 0;
    OtWorkspace ws;
    StatSet stats_;
};

} // namespace ironman::ot

#endif // IRONMAN_OT_FERRET_H
