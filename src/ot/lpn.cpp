#include "ot/lpn.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <vector>

#include "common/logging.h"

#if defined(__x86_64__) || defined(__i386__)
#include <emmintrin.h>
#define IRONMAN_HAVE_SSE2 1
#endif

namespace ironman::ot {

namespace {

/** AES key binding the matrix to its public seed. */
Block
matrixKey(uint64_t seed)
{
    return Block(seed ^ 0xa5a5a5a5deadbeefULL, ~seed);
}

constexpr size_t kRowsPerChunk = 256;

// ---------------------------------------------------------------------------
// Gather-XOR kernels over the lane-transposed tape
// ---------------------------------------------------------------------------

constexpr size_t kLane = LpnIndexTape::kLane;

/**
 * Software prefetch of a whole lane group's taps: the k-vector
 * gathers are the one randomly addressed stream of the kernel (the
 * tape itself is sequential — hardware prefetchers cover it), so each
 * group's d*kLane input lines are requested one group ahead of use.
 * The next group's indices are a contiguous read of the transposed
 * tape, making the address computation nearly free.
 */
inline void
prefetchGroupTaps(const Block *in, const uint32_t *group_tape,
                  unsigned d)
{
    for (unsigned i = 0; i < d; ++i) {
        const uint32_t *gi = group_tape + i * kLane;
        for (size_t x = 0; x < kLane; ++x)
            __builtin_prefetch(in + gi[x], 0, 3);
    }
}

void
gatherXorScalar(const Block *in, Block *inout, const uint32_t *tape,
                size_t row0, size_t count, unsigned d)
{
    const bool pf = detail::lpnPrefetchEnabled();
    for (size_t j = 0; j < count; ++j) {
        const size_t r = row0 + j;
        const uint32_t *g = tape + (r / kLane) * size_t(d) * kLane +
                            (r % kLane);
        // One group ahead, issued once per group (at its first row).
        if (pf && r % kLane == 0 && j + 2 * kLane <= count)
            prefetchGroupTaps(in, g + size_t(d) * kLane, d);
        Block acc = inout[j];
        for (unsigned i = 0; i < d; ++i)
            acc ^= in[g[i * kLane]];
        inout[j] = acc;
    }
}

#ifdef IRONMAN_HAVE_SSE2

void
gatherXorSse2(const Block *in, Block *inout, const uint32_t *tape,
              size_t row0, size_t count, unsigned d)
{
    const bool pf = detail::lpnPrefetchEnabled();
    size_t j = 0;
    // Scalar head until the row index is lane-aligned.
    while (j < count && ((row0 + j) % kLane) != 0) {
        gatherXorScalar(in, inout + j, tape, row0 + j, 1, d);
        ++j;
    }

    // Full groups: kLane independent accumulators hide the latency of
    // the randomly addressed 16-byte gathers; each tap's kLane indices
    // are one contiguous 32-byte read of the transposed tape. The next
    // group's taps are prefetched while this group's XOR chains retire.
    for (; j + kLane <= count; j += kLane) {
        const size_t r = row0 + j;
        const uint32_t *g = tape + (r / kLane) * size_t(d) * kLane;
        if (pf && j + 2 * kLane <= count)
            prefetchGroupTaps(in, g + size_t(d) * kLane, d);
        __m128i acc[kLane];
        for (size_t x = 0; x < kLane; ++x)
            acc[x] = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(inout + j + x));
        for (unsigned i = 0; i < d; ++i) {
            const uint32_t *gi = g + i * kLane;
            for (size_t x = 0; x < kLane; ++x)
                acc[x] = _mm_xor_si128(
                    acc[x], _mm_loadu_si128(
                                reinterpret_cast<const __m128i *>(
                                    in + gi[x])));
        }
        for (size_t x = 0; x < kLane; ++x)
            _mm_storeu_si128(reinterpret_cast<__m128i *>(inout + j + x),
                             acc[x]);
    }

    if (j < count)
        gatherXorScalar(in, inout + j, tape, row0 + j, count - j, d);
}

#endif // IRONMAN_HAVE_SSE2

// ---------------------------------------------------------------------------
// Bit gather-XOR kernels (the tape path of encodeBits)
// ---------------------------------------------------------------------------

/** Scalar reference: one row at a time over the packed words. */
void
bitGatherScalar(const uint64_t *in, uint64_t *inout, const uint32_t *tape,
                size_t rows, unsigned d)
{
    for (size_t r = 0; r < rows; ++r) {
        const uint32_t *g = tape + (r / kLane) * size_t(d) * kLane +
                            (r % kLane);
        uint64_t bit = 0;
        for (unsigned i = 0; i < d; ++i) {
            const uint32_t idx = g[i * kLane];
            bit ^= (in[idx >> 6] >> (idx & 63)) & 1;
        }
        inout[r >> 6] ^= bit << (r & 63);
    }
}

/**
 * Word-at-a-time kernel: each 8-row lane group accumulates its result
 * bits in a register and lands as ONE byte XOR — no per-bit get/set.
 */
void
bitGatherWords(const uint64_t *in, uint64_t *inout, const uint32_t *tape,
               size_t rows, unsigned d)
{
    static_assert(kLane == 8, "one lane group == one output byte");
    uint8_t *out_bytes = reinterpret_cast<uint8_t *>(inout);
    size_t r = 0;
    for (; r + kLane <= rows; r += kLane) {
        const uint32_t *g = tape + (r / kLane) * size_t(d) * kLane;
        unsigned acc = 0;
        for (unsigned i = 0; i < d; ++i) {
            const uint32_t *gi = g + i * kLane;
            for (size_t x = 0; x < kLane; ++x)
                acc ^= unsigned((in[gi[x] >> 6] >> (gi[x] & 63)) & 1)
                       << x;
        }
        out_bytes[r / 8] ^= uint8_t(acc);
    }
    for (; r < rows; ++r) {
        const uint32_t *g = tape + (r / kLane) * size_t(d) * kLane +
                            (r % kLane);
        uint64_t bit = 0;
        for (unsigned i = 0; i < d; ++i) {
            const uint32_t idx = g[i * kLane];
            bit ^= (in[idx >> 6] >> (idx & 63)) & 1;
        }
        inout[r >> 6] ^= bit << (r & 63);
    }
}

// ---------------------------------------------------------------------------
// Kernel selection
// ---------------------------------------------------------------------------

using GatherFn = void (*)(const Block *, Block *, const uint32_t *,
                          size_t, size_t, unsigned);
using BitGatherFn = void (*)(const uint64_t *, uint64_t *,
                             const uint32_t *, size_t, unsigned);

std::atomic<LpnKernel> gatherKernelMode{LpnKernel::Auto};

/** Prefetch pinning: -1 = auto (calibrated), 0 = off, 1 = on. */
std::atomic<int> gatherPrefetchMode{-1};

#ifdef IRONMAN_HAVE_SSE2

/**
 * Measure the two AVX2 block kernels on a synthetic tape and keep the
 * faster: vpgatherqq beats the vinserti128 pair on some cores and
 * loses on others, so Auto decides per CPU, once per process (during
 * engine warm-up — the scratch buffers here are freed immediately).
 */
GatherFn
calibrateAvx2Kernel()
{
    constexpr size_t k = 2048, rows = 4096;
    constexpr unsigned d = 10;
    std::vector<Block> in(k), a(rows), b(rows);
    std::vector<uint32_t> tape((rows / kLane) * d * kLane);
    uint64_t s = 0x9e3779b97f4a7c15ULL;
    for (Block &blk : in) {
        s = s * 6364136223846793005ULL + 1442695040888963407ULL;
        blk = Block(s, ~s);
    }
    for (uint32_t &t : tape) {
        s = s * 6364136223846793005ULL + 1442695040888963407ULL;
        t = uint32_t(s >> 33) % k;
    }
    auto time = [&](GatherFn fn, Block *rows_buf) {
        uint64_t best = ~0ULL;
        for (int rep = 0; rep < 3; ++rep) {
            const auto t0 = std::chrono::steady_clock::now();
            fn(in.data(), rows_buf, tape.data(), 0, rows, d);
            const auto t1 = std::chrono::steady_clock::now();
            best = std::min(
                best, uint64_t(std::chrono::duration_cast<
                                   std::chrono::nanoseconds>(t1 - t0)
                                   .count()));
        }
        return best;
    };
    const uint64_t insert = time(&detail::lpnGatherXorAvx2, a.data());
    const uint64_t gather =
        time(&detail::lpnGatherXorAvx2Gather, b.data());
    return gather < insert ? &detail::lpnGatherXorAvx2Gather
                           : &detail::lpnGatherXorAvx2;
}

#endif // IRONMAN_HAVE_SSE2

/** Auto-mode prefetch verdict: -1 = not yet measured, 0/1 = off/on. */
std::atomic<int> prefetchAutoResult{-1};

#ifdef IRONMAN_HAVE_SSE2

/**
 * Measure the chosen kernel with tap prefetch on vs off and keep the
 * winner, once per process. The synthetic k-vector is 2 MB — sized
 * like the paper sets' LPN input (past L1/L2 on most parts), unlike
 * the deliberately small kernel-calibration tape: prefetch only earns
 * its uops when the taps actually miss, so it must be judged at a
 * realistic working-set size.
 */
void
ensurePrefetchCalibrated(GatherFn fn)
{
    if (prefetchAutoResult.load(std::memory_order_relaxed) >= 0)
        return;
    static std::once_flag flag;
    std::call_once(flag, [fn] {
        constexpr size_t k = size_t(1) << 17, rows = size_t(1) << 13;
        constexpr unsigned d = 10;
        std::vector<Block> in(k), buf(rows);
        std::vector<uint32_t> tape((rows / kLane) * d * kLane);
        uint64_t s = 0x243f6a8885a308d3ULL;
        for (Block &blk : in) {
            s = s * 6364136223846793005ULL + 1442695040888963407ULL;
            blk = Block(s, ~s);
        }
        for (uint32_t &t : tape) {
            s = s * 6364136223846793005ULL + 1442695040888963407ULL;
            t = uint32_t(s >> 33) % k;
        }
        auto time_mode = [&](int mode) {
            gatherPrefetchMode.store(mode, std::memory_order_relaxed);
            uint64_t best = ~0ULL;
            for (int rep = 0; rep < 3; ++rep) {
                const auto t0 = std::chrono::steady_clock::now();
                fn(in.data(), buf.data(), tape.data(), 0, rows, d);
                const auto t1 = std::chrono::steady_clock::now();
                best = std::min(
                    best,
                    uint64_t(std::chrono::duration_cast<
                                 std::chrono::nanoseconds>(t1 - t0)
                                 .count()));
            }
            return best;
        };
        // The timing loop pins the global mode; put back whatever was
        // there before (a caller's explicit setPrefetch pin survives
        // calibration — only the Auto verdict is updated).
        const int prior =
            gatherPrefetchMode.load(std::memory_order_relaxed);
        const uint64_t off = time_mode(0);
        const uint64_t on = time_mode(1);
        gatherPrefetchMode.store(prior, std::memory_order_relaxed);
        prefetchAutoResult.store(on < off ? 1 : 0,
                                 std::memory_order_relaxed);
    });
}

#endif // IRONMAN_HAVE_SSE2

GatherFn
pickAutoKernel()
{
#ifdef IRONMAN_HAVE_SSE2
    if (detail::lpnAvx2Supported()) {
        static const GatherFn best = calibrateAvx2Kernel();
        ensurePrefetchCalibrated(best);
        return best;
    }
    ensurePrefetchCalibrated(&gatherXorSse2);
    return &gatherXorSse2;
#else
    // Scalar-only platform: prefetch stays off until pinned.
    return &gatherXorScalar;
#endif
}

GatherFn
activeGatherKernel()
{
    switch (gatherKernelMode.load(std::memory_order_relaxed)) {
      case LpnKernel::Scalar:
        return &gatherXorScalar;
#ifdef IRONMAN_HAVE_SSE2
      case LpnKernel::Sse2:
        return &gatherXorSse2;
      case LpnKernel::Avx2:
        if (detail::lpnAvx2Supported())
            return &detail::lpnGatherXorAvx2;
        break;
      case LpnKernel::Avx2Gather:
        if (detail::lpnAvx2Supported())
            return &detail::lpnGatherXorAvx2Gather;
        break;
#endif
      default:
        break;
    }
    return pickAutoKernel();
}

BitGatherFn
activeBitKernel()
{
    switch (gatherKernelMode.load(std::memory_order_relaxed)) {
      case LpnKernel::Scalar:
        return &bitGatherScalar;
      case LpnKernel::Sse2:
        return &bitGatherWords;
      default:
        break;
    }
#ifdef IRONMAN_HAVE_SSE2
    if (detail::lpnAvx2Supported())
        return &detail::lpnBitGatherXorAvx2;
#endif
    return &bitGatherWords;
}

} // namespace

void
LpnEncoder::setKernel(LpnKernel kernel)
{
    gatherKernelMode.store(kernel, std::memory_order_relaxed);
}

void
LpnEncoder::setPrefetch(bool on)
{
    gatherPrefetchMode.store(on ? 1 : 0, std::memory_order_relaxed);
}

void
LpnEncoder::setPrefetchAuto()
{
    gatherPrefetchMode.store(-1, std::memory_order_relaxed);
}

bool
detail::lpnPrefetchEnabled()
{
    const int mode = gatherPrefetchMode.load(std::memory_order_relaxed);
    if (mode >= 0)
        return mode != 0;
    // Auto: the calibrated verdict; off while (or until) calibrating.
    return prefetchAutoResult.load(std::memory_order_relaxed) == 1;
}

void
LpnEncoder::forceScalarKernel(bool force)
{
    setKernel(force ? LpnKernel::Scalar : LpnKernel::Auto);
}

const char *
LpnEncoder::activeKernelName()
{
    const GatherFn fn = activeGatherKernel();
    if (fn == &gatherXorScalar)
        return "scalar";
#ifdef IRONMAN_HAVE_SSE2
    if (fn == &gatherXorSse2)
        return "sse2";
    if (fn == &detail::lpnGatherXorAvx2)
        return "avx2-insert";
    if (fn == &detail::lpnGatherXorAvx2Gather)
        return "avx2-vpgatherqq";
#endif
    return "?";
}

LpnEncoder::LpnEncoder(const LpnParams &params) : p(params)
{
    IRONMAN_CHECK(p.n > 0 && p.k > 1 && p.d >= 1);
    IRONMAN_CHECK(p.d <= 12, "3 AES calls supply at most 12 indices");
}

void
LpnEncoder::rowIndices(uint64_t row, uint32_t *out) const
{
    LpnEncodeScratch scratch;
    rowIndicesBatch(row, 1, out, scratch);
}

void
LpnEncoder::rowIndicesBatch(uint64_t row0, size_t count, uint32_t *out,
                            LpnEncodeScratch &scratch) const
{
    // The index tape is AES_key(row * 3 + c) for c < 3, expressed as a
    // counter expansion of the per-row seed block row * 3.
    if (!scratch.gen || scratch.genSeed != p.seed) {
        scratch.gen = crypto::makeCtrExpander(matrixKey(p.seed),
                                              aesCallsPerRow);
        scratch.genSeed = p.seed;
    }
    if (scratch.seeds.size() < count)
        scratch.seeds.resize(count);
    if (scratch.ks.size() < count * aesCallsPerRow)
        scratch.ks.resize(count * aesCallsPerRow);

    for (size_t r = 0; r < count; ++r)
        scratch.seeds[r] =
            Block::fromUint64((row0 + r) * aesCallsPerRow);
    scratch.gen->expand(scratch.seeds.data(), scratch.ks.data(), count,
                        aesCallsPerRow);

    for (size_t r = 0; r < count; ++r) {
        uint32_t words[aesCallsPerRow * 4];
        for (unsigned c = 0; c < aesCallsPerRow; ++c) {
            const Block &b = scratch.ks[r * aesCallsPerRow + c];
            words[4 * c + 0] = uint32_t(b.lo);
            words[4 * c + 1] = uint32_t(b.lo >> 32);
            words[4 * c + 2] = uint32_t(b.hi);
            words[4 * c + 3] = uint32_t(b.hi >> 32);
        }
        for (unsigned i = 0; i < p.d; ++i)
            out[r * p.d + i] = words[i] % uint32_t(p.k);
    }
}

void
LpnEncoder::encodeBlocks(const Block *in, Block *inout, uint64_t row0,
                         size_t count, LpnEncodeScratch &scratch) const
{
    if (scratch.idx.size() < kRowsPerChunk * p.d)
        scratch.idx.resize(kRowsPerChunk * p.d);
    uint32_t *idx = scratch.idx.data();
    for (size_t done = 0; done < count; done += kRowsPerChunk) {
        size_t chunk = std::min(kRowsPerChunk, count - done);
        rowIndicesBatch(row0 + done, chunk, idx, scratch);
        for (size_t r = 0; r < chunk; ++r) {
            Block acc = inout[done + r];
            const uint32_t *row_idx = &idx[r * p.d];
            for (unsigned i = 0; i < p.d; ++i)
                acc ^= in[row_idx[i]];
            inout[done + r] = acc;
        }
    }
}

void
LpnEncoder::encodeBlocksPool(const Block *in, Block *inout, size_t count,
                             common::ThreadPool &pool,
                             LpnEncodeScratch *scratch) const
{
    pool.parallelFor(count, [&](int worker, size_t lo, size_t hi) {
        encodeBlocks(in, inout + lo, lo, hi - lo, scratch[worker]);
    });
}

void
LpnEncoder::buildTape(LpnIndexTape &tape, size_t rows,
                      common::ThreadPool &pool,
                      LpnEncodeScratch *scratch) const
{
    if (tape.ready() && tape.builtFor == p && tape.rows >= rows)
        return;

    const size_t groups = (rows + kLane - 1) / kLane;
    tape.idx.assign(groups * p.d * kLane, 0);
    tape.rows = rows;
    tape.builtFor = p;
    uint32_t *out = tape.idx.data();

    // Unpack + `% k` reduce each row exactly once, transposing into
    // the lane layout as we go. Chunked so the row-major staging stays
    // in the per-worker scratch.
    constexpr size_t kChunkGroups = kRowsPerChunk / kLane;
    pool.parallelFor(groups, [&](int worker, size_t glo, size_t ghi) {
        LpnEncodeScratch &sc = scratch[worker];
        for (size_t g0 = glo; g0 < ghi; g0 += kChunkGroups) {
            const size_t gcnt = std::min(kChunkGroups, ghi - g0);
            const size_t row0 = g0 * kLane;
            const size_t cnt =
                std::min(gcnt * kLane, rows - std::min(rows, row0));
            if (cnt == 0)
                continue;
            if (sc.idx.size() < kRowsPerChunk * p.d)
                sc.idx.resize(kRowsPerChunk * p.d);
            rowIndicesBatch(row0, cnt, sc.idx.data(), sc);
            for (size_t r = 0; r < cnt; ++r) {
                const size_t gr = row0 + r;
                uint32_t *dst = out + (gr / kLane) * p.d * kLane +
                                (gr % kLane);
                for (unsigned i = 0; i < p.d; ++i)
                    dst[i * kLane] = sc.idx[r * p.d + i];
            }
        }
    });
}

void
LpnEncoder::encodeBlocksTape(const Block *in, Block *inout, uint64_t row0,
                             size_t count, const LpnIndexTape &tape) const
{
    IRONMAN_CHECK(tape.ready() && tape.builtFor == p,
                  "tape built for different LPN params");
    IRONMAN_CHECK(row0 + count <= tape.rows, "tape too short");
    activeGatherKernel()(in, inout, tape.idx.data(), row0, count, p.d);
}

void
LpnEncoder::encodeBlocksTapePool(const Block *in, Block *inout,
                                 size_t count, const LpnIndexTape &tape,
                                 common::ThreadPool &pool) const
{
    pool.parallelFor(count, [&](int, size_t lo, size_t hi) {
        encodeBlocksTape(in, inout + lo, lo, hi - lo, tape);
    });
}

void
LpnEncoder::encodeBits(const BitVec &in, BitVec &inout,
                       LpnEncodeScratch &scratch) const
{
    IRONMAN_CHECK(in.size() == p.k && inout.size() == p.n);
    if (scratch.idx.size() < kRowsPerChunk * p.d)
        scratch.idx.resize(kRowsPerChunk * p.d);
    uint32_t *idx = scratch.idx.data();
    for (size_t done = 0; done < p.n; done += kRowsPerChunk) {
        size_t chunk = std::min(kRowsPerChunk, p.n - done);
        rowIndicesBatch(done, chunk, idx, scratch);
        for (size_t r = 0; r < chunk; ++r) {
            bool acc = inout.get(done + r);
            for (unsigned i = 0; i < p.d; ++i)
                acc ^= in.get(idx[r * p.d + i]);
            inout.set(done + r, acc);
        }
    }
}

void
LpnEncoder::encodeBitsTape(const BitVec &in, BitVec &inout,
                           const LpnIndexTape &tape) const
{
    IRONMAN_CHECK(in.size() == p.k && inout.size() == p.n);
    IRONMAN_CHECK(tape.ready() && tape.builtFor == p &&
                      tape.rows >= p.n,
                  "tape too short for bit encode");
    activeBitKernel()(in.rawWords().data(), inout.rawWords().data(),
                      tape.idx.data(), p.n, p.d);
}

} // namespace ironman::ot
