#include "ot/lpn.h"

#include <thread>

#include "common/logging.h"
#include "crypto/aes.h"

namespace ironman::ot {

namespace {

/** AES key binding the matrix to its public seed. */
Block
matrixKey(uint64_t seed)
{
    return Block(seed ^ 0xa5a5a5a5deadbeefULL, ~seed);
}

constexpr size_t kRowsPerChunk = 256;

} // namespace

LpnEncoder::LpnEncoder(const LpnParams &params)
    : p(params), aes(matrixKey(params.seed))
{
    IRONMAN_CHECK(p.n > 0 && p.k > 1 && p.d >= 1);
    IRONMAN_CHECK(p.d <= 12, "3 AES calls supply at most 12 indices");
}

void
LpnEncoder::rowIndices(uint64_t row, uint32_t *out) const
{
    rowIndicesBatch(row, 1, out);
}

void
LpnEncoder::rowIndicesBatch(uint64_t row0, size_t count,
                            uint32_t *out) const
{
    std::vector<Block> ctr(count * aesCallsPerRow);
    std::vector<Block> ks(count * aesCallsPerRow);
    for (size_t r = 0; r < count; ++r)
        for (unsigned c = 0; c < aesCallsPerRow; ++c)
            ctr[r * aesCallsPerRow + c] =
                Block::fromUint64((row0 + r) * aesCallsPerRow + c);
    aes.encryptBatch(ctr.data(), ks.data(), ctr.size());

    for (size_t r = 0; r < count; ++r) {
        uint32_t words[aesCallsPerRow * 4];
        for (unsigned c = 0; c < aesCallsPerRow; ++c) {
            const Block &b = ks[r * aesCallsPerRow + c];
            words[4 * c + 0] = uint32_t(b.lo);
            words[4 * c + 1] = uint32_t(b.lo >> 32);
            words[4 * c + 2] = uint32_t(b.hi);
            words[4 * c + 3] = uint32_t(b.hi >> 32);
        }
        for (unsigned i = 0; i < p.d; ++i)
            out[r * p.d + i] = words[i] % uint32_t(p.k);
    }
}

void
LpnEncoder::encodeBlocks(const Block *in, Block *inout, uint64_t row0,
                         size_t count) const
{
    std::vector<uint32_t> idx(kRowsPerChunk * p.d);
    for (size_t done = 0; done < count; done += kRowsPerChunk) {
        size_t chunk = std::min(kRowsPerChunk, count - done);
        rowIndicesBatch(row0 + done, chunk, idx.data());
        for (size_t r = 0; r < chunk; ++r) {
            Block acc = inout[done + r];
            const uint32_t *row_idx = &idx[r * p.d];
            for (unsigned i = 0; i < p.d; ++i)
                acc ^= in[row_idx[i]];
            inout[done + r] = acc;
        }
    }
}

void
LpnEncoder::encodeBlocksParallel(const Block *in, Block *inout,
                                 size_t count, int threads) const
{
    if (threads <= 1) {
        encodeBlocks(in, inout, 0, count);
        return;
    }

    std::vector<std::thread> pool;
    size_t per = (count + threads - 1) / threads;
    for (int w = 0; w < threads; ++w) {
        size_t lo = std::min(count, w * per);
        size_t hi = std::min(count, lo + per);
        if (lo >= hi)
            break;
        pool.emplace_back([this, in, inout, lo, hi] {
            encodeBlocks(in, inout + lo, lo, hi - lo);
        });
    }
    for (auto &th : pool)
        th.join();
}

void
LpnEncoder::encodeBits(const BitVec &in, BitVec &inout) const
{
    IRONMAN_CHECK(in.size() == p.k && inout.size() == p.n);
    std::vector<uint32_t> idx(kRowsPerChunk * p.d);
    for (size_t done = 0; done < p.n; done += kRowsPerChunk) {
        size_t chunk = std::min(kRowsPerChunk, p.n - done);
        rowIndicesBatch(done, chunk, idx.data());
        for (size_t r = 0; r < chunk; ++r) {
            bool acc = inout.get(done + r);
            for (unsigned i = 0; i < p.d; ++i)
                acc ^= in.get(idx[r * p.d + i]);
            inout.set(done + r, acc);
        }
    }
}

} // namespace ironman::ot
