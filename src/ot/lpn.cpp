#include "ot/lpn.h"

#include <thread>

#include "common/logging.h"

namespace ironman::ot {

namespace {

/** AES key binding the matrix to its public seed. */
Block
matrixKey(uint64_t seed)
{
    return Block(seed ^ 0xa5a5a5a5deadbeefULL, ~seed);
}

constexpr size_t kRowsPerChunk = 256;

} // namespace

LpnEncoder::LpnEncoder(const LpnParams &params) : p(params)
{
    IRONMAN_CHECK(p.n > 0 && p.k > 1 && p.d >= 1);
    IRONMAN_CHECK(p.d <= 12, "3 AES calls supply at most 12 indices");
}

void
LpnEncoder::rowIndices(uint64_t row, uint32_t *out) const
{
    rowIndicesBatch(row, 1, out);
}

void
LpnEncoder::rowIndicesBatch(uint64_t row0, size_t count,
                            uint32_t *out) const
{
    LpnEncodeScratch scratch;
    rowIndicesBatch(row0, count, out, scratch);
}

void
LpnEncoder::rowIndicesBatch(uint64_t row0, size_t count, uint32_t *out,
                            LpnEncodeScratch &scratch) const
{
    // The index tape is AES_key(row * 3 + c) for c < 3, expressed as a
    // counter expansion of the per-row seed block row * 3.
    if (!scratch.gen || scratch.genSeed != p.seed) {
        scratch.gen = crypto::makeCtrExpander(matrixKey(p.seed),
                                              aesCallsPerRow);
        scratch.genSeed = p.seed;
    }
    if (scratch.seeds.size() < count)
        scratch.seeds.resize(count);
    if (scratch.ks.size() < count * aesCallsPerRow)
        scratch.ks.resize(count * aesCallsPerRow);

    for (size_t r = 0; r < count; ++r)
        scratch.seeds[r] =
            Block::fromUint64((row0 + r) * aesCallsPerRow);
    scratch.gen->expand(scratch.seeds.data(), scratch.ks.data(), count,
                        aesCallsPerRow);

    for (size_t r = 0; r < count; ++r) {
        uint32_t words[aesCallsPerRow * 4];
        for (unsigned c = 0; c < aesCallsPerRow; ++c) {
            const Block &b = scratch.ks[r * aesCallsPerRow + c];
            words[4 * c + 0] = uint32_t(b.lo);
            words[4 * c + 1] = uint32_t(b.lo >> 32);
            words[4 * c + 2] = uint32_t(b.hi);
            words[4 * c + 3] = uint32_t(b.hi >> 32);
        }
        for (unsigned i = 0; i < p.d; ++i)
            out[r * p.d + i] = words[i] % uint32_t(p.k);
    }
}

void
LpnEncoder::encodeBlocks(const Block *in, Block *inout, uint64_t row0,
                         size_t count) const
{
    LpnEncodeScratch scratch;
    encodeBlocks(in, inout, row0, count, scratch);
}

void
LpnEncoder::encodeBlocks(const Block *in, Block *inout, uint64_t row0,
                         size_t count, LpnEncodeScratch &scratch) const
{
    if (scratch.idx.size() < kRowsPerChunk * p.d)
        scratch.idx.resize(kRowsPerChunk * p.d);
    uint32_t *idx = scratch.idx.data();
    for (size_t done = 0; done < count; done += kRowsPerChunk) {
        size_t chunk = std::min(kRowsPerChunk, count - done);
        rowIndicesBatch(row0 + done, chunk, idx, scratch);
        for (size_t r = 0; r < chunk; ++r) {
            Block acc = inout[done + r];
            const uint32_t *row_idx = &idx[r * p.d];
            for (unsigned i = 0; i < p.d; ++i)
                acc ^= in[row_idx[i]];
            inout[done + r] = acc;
        }
    }
}

void
LpnEncoder::encodeBlocksParallel(const Block *in, Block *inout,
                                 size_t count, int threads) const
{
    if (threads <= 1) {
        encodeBlocks(in, inout, 0, count);
        return;
    }

    std::vector<std::thread> pool;
    size_t per = (count + threads - 1) / threads;
    for (int w = 0; w < threads; ++w) {
        size_t lo = std::min(count, w * per);
        size_t hi = std::min(count, lo + per);
        if (lo >= hi)
            break;
        pool.emplace_back([this, in, inout, lo, hi] {
            encodeBlocks(in, inout + lo, lo, hi - lo);
        });
    }
    for (auto &th : pool)
        th.join();
}

void
LpnEncoder::encodeBlocksPool(const Block *in, Block *inout, size_t count,
                             common::ThreadPool &pool,
                             LpnEncodeScratch *scratch) const
{
    pool.parallelFor(count, [&](int worker, size_t lo, size_t hi) {
        encodeBlocks(in, inout + lo, lo, hi - lo, scratch[worker]);
    });
}

void
LpnEncoder::encodeBits(const BitVec &in, BitVec &inout) const
{
    LpnEncodeScratch scratch;
    encodeBits(in, inout, scratch);
}

void
LpnEncoder::encodeBits(const BitVec &in, BitVec &inout,
                       LpnEncodeScratch &scratch) const
{
    IRONMAN_CHECK(in.size() == p.k && inout.size() == p.n);
    if (scratch.idx.size() < kRowsPerChunk * p.d)
        scratch.idx.resize(kRowsPerChunk * p.d);
    uint32_t *idx = scratch.idx.data();
    for (size_t done = 0; done < p.n; done += kRowsPerChunk) {
        size_t chunk = std::min(kRowsPerChunk, p.n - done);
        rowIndicesBatch(done, chunk, idx, scratch);
        for (size_t r = 0; r < chunk; ++r) {
            bool acc = inout.get(done + r);
            for (unsigned i = 0; i < p.d; ++i)
                acc ^= in.get(idx[r * p.d + i]);
            inout.set(done + r, acc);
        }
    }
}

} // namespace ironman::ot
