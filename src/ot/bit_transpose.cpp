#include "ot/bit_transpose.h"
#include <utility>

#include "common/logging.h"

namespace ironman::ot {

void
transpose64(uint64_t a[64])
{
    // The classic butterfly network transposes about the
    // anti-diagonal under an LSB-first bit convention; reversing the
    // row order before and after yields the main-diagonal transpose
    // (a'[i] bit j == a[j] bit i).
    for (int i = 0; i < 32; ++i)
        std::swap(a[i], a[63 - i]);

    uint64_t m = 0x00000000FFFFFFFFULL;
    for (int j = 32; j != 0; j >>= 1, m ^= m << j) {
        for (int k = 0; k < 64; k = (k + j + 1) & ~j) {
            uint64_t t = (a[k] ^ (a[k + j] >> j)) & m;
            a[k] ^= t;
            a[k + j] ^= t << j;
        }
    }

    for (int i = 0; i < 32; ++i)
        std::swap(a[i], a[63 - i]);
}

void
transposeColumnsToBlocks(const std::vector<BitVec> &columns, size_t n,
                         Block *rows)
{
    IRONMAN_CHECK(columns.size() == 128);
    IRONMAN_CHECK(n % 64 == 0);
    for (const BitVec &c : columns)
        IRONMAN_CHECK(c.size() >= n);

    uint64_t tile[64];

    // Process 64 rows at a time; within them, the low 64 and high 64
    // columns each form one 64x64 tile.
    for (size_t r0 = 0; r0 < n; r0 += 64) {
        for (int half = 0; half < 2; ++half) {
            // tile[c] = bits r0..r0+63 of column (half*64 + c).
            for (int c = 0; c < 64; ++c)
                tile[c] =
                    columns[half * 64 + c].rawWords()[r0 / 64];
            transpose64(tile);
            // After transpose, tile[i] holds row (r0+i)'s 64 bits for
            // this half's columns... with transpose64's convention,
            // bit c of tile[i] corresponds to column c's bit i.
            for (int i = 0; i < 64; ++i) {
                if (half == 0)
                    rows[r0 + i].lo = tile[i];
                else
                    rows[r0 + i].hi = tile[i];
            }
        }
    }
}

} // namespace ironman::ot
