#include "nmp/reference.h"

#include "common/rng.h"
#include "common/stats.h"
#include "ot/base_cot.h"
#include "ot/ferret.h"

namespace ironman::nmp {

CpuOteMeasurement
measureCpuOte(const ot::FerretParams &params, int threads, int executions)
{
    CpuOteMeasurement m;

    Rng dealer(0xC0FFEE);
    Block delta = dealer.nextBlock();

    Timer init_timer;
    auto [base_s, base_r] =
        ot::dealBaseCots(dealer, delta, params.reservedCots());
    m.initSeconds = init_timer.seconds();

    StatSet sender_stats;
    Timer run_timer;
    auto wire = net::runTwoParty(
        [&](net::Channel &ch) {
            ot::FerretCotSender sender(ch, params, delta,
                                       std::move(base_s.q));
            sender.setThreads(threads);
            Rng rng(0xAB01);
            std::vector<Block> out(params.usableOts());
            for (int e = 0; e < executions; ++e) {
                sender.extendInto(rng, out.data());
                m.usableOts = out.size();
            }
            sender_stats = sender.stats();
        },
        [&](net::Channel &ch) {
            ot::FerretCotReceiver receiver(ch, params,
                                           std::move(base_r.choice),
                                           std::move(base_r.t));
            receiver.setThreads(threads);
            Rng rng(0xAB02);
            BitVec choice;
            std::vector<Block> t(params.usableOts());
            for (int e = 0; e < executions; ++e)
                receiver.extendInto(rng, choice, t.data());
        });

    m.secondsPerExec = run_timer.seconds() / executions;
    m.spcotSeconds =
        sender_stats.get("spcot_us") * 1e-6 / executions;
    m.lpnSeconds = sender_stats.get("lpn_us") * 1e-6 / executions;
    m.wireBytes = wire.totalBytes / executions;
    m.spcotPrgOps = sender_stats.get("spcot_prg_ops") / executions;
    return m;
}

double
paperCpuSecondsPerExec(const ot::FerretParams &params)
{
    // Read off Fig. 1(b) (Init + SPCOT + LPN stack, full-thread CPU).
    if (params.name == "2^20") return 0.45;
    if (params.name == "2^21") return 0.85;
    if (params.name == "2^22") return 1.35;
    if (params.name == "2^23") return 2.00;
    if (params.name == "2^24") return 2.90;
    return 0.0;
}

} // namespace ironman::nmp
