#include "nmp/ironman_model.h"

#include <algorithm>

#include "common/logging.h"
#include "ot/ggm_tree.h"
#include "ot/lpn.h"

namespace ironman::nmp {

IronmanModel::IronmanModel(const IronmanConfig &config,
                           const ot::FerretParams &params_in)
    : cfg(config), params(params_in)
{
    IRONMAN_CHECK(cfg.numDimms >= 1 && cfg.ranksPerDimm >= 1);
}

IronmanReport
IronmanModel::lpnPhase(const SortOptions &sort) const
{
    IronmanReport report;

    ot::LpnParams lp;
    lp.n = params.n;
    lp.k = params.k;
    lp.d = params.lpnWeight;
    lp.seed = params.lpnSeed;
    ot::LpnEncoder enc(lp);

    const size_t rows_per_rank =
        (params.n + cfg.totalRanks() - 1) / cfg.totalRanks();
    const size_t sim_rows = cfg.sampleRows == 0
                                ? rows_per_rank
                                : std::min(rows_per_rank, cfg.sampleRows);

    SortedLpnLayout layout = buildSortedLayout(enc, 0, sim_rows, sort);

    // Memory map of one rank: [0, k*16) holds the (permuted) input
    // vector; the sorted Colidx/Rowidx arrays stream from just above
    // it (8 bytes per access -> one 64-byte line per 8 accesses).
    sim::CacheConfig cache_cfg;
    cache_cfg.sizeBytes = cfg.cacheBytes;
    cache_cfg.ways = cfg.cacheWays;
    sim::CacheSim cache(cache_cfg);

    const uint64_t stream_base =
        (uint64_t(params.k) * sizeof(Block) + 4095) / 4096 * 4096;

    std::vector<sim::DramRequest> trace;
    trace.reserve(layout.accesses() / 3);
    for (size_t a = 0; a < layout.accesses(); ++a) {
        uint64_t addr = uint64_t(layout.colidx[a]) * sizeof(Block);
        if (!cache.access(addr)) {
            trace.push_back({addr / 64 * 64, false});
        }
        if ((a & 7) == 7)
            trace.push_back({stream_base + (a / 8) * 64, false});
    }

    sim::DramRankSim dram_sim(cfg.dram, cfg.geom, 16);
    report.dram = dram_sim.replay(trace);
    report.cache = cache.stats();

    // Service-rate bound of the rank logic: the XOR tree folds one
    // 128-bit value per cycle; SRAM reads pipeline, but deeper arrays
    // lower the sustainable rate (Sec. 6.3's "longer cache access
    // latencies degrade overall performance").
    const double service_cycles = std::max(
        1.0, sim::CacheSim::accessLatencyCycles(cfg.cacheBytes) / 4.0);
    const double logic_secs =
        layout.accesses() * service_cycles / cfg.logicClockHz;
    const double dram_secs = report.dram.seconds(cfg.dram);

    const double scale = double(rows_per_rank) / double(sim_rows);
    report.lpnLogicSeconds = logic_secs * scale;
    report.lpnDramSeconds = dram_secs * scale;
    report.lpnSeconds =
        std::max(report.lpnLogicSeconds, report.lpnDramSeconds);
    return report;
}

void
IronmanModel::spcotPhase(IronmanReport &report) const
{
    sim::ExpandWorkload wl;
    wl.arities = ot::treeArities(params.treeLeaves(), params.arity);
    wl.numTrees = params.t;
    // ChaCha emits 4 blocks per invocation (default rule); a pipelined
    // AES bank needs one invocation per child.
    wl.opsPerNodeOverride =
        params.prg == crypto::PrgKind::Aes ? params.arity : 0;

    report.spcotSchedule = sim::scheduleExpansionMultiCore(
        wl, cfg.schedule, cfg.spcotPipelines, cfg.pipelineStages);
    report.spcotSeconds =
        double(report.spcotSchedule.cycles) / cfg.spcotClockHz;
}

void
IronmanModel::rollupEnergy(IronmanReport &report) const
{
    PuSpec pu;
    pu.chachaCores = cfg.chachaCoresPerDimm;
    pu.cacheBytes = cfg.cacheBytes;
    pu.rankModules = cfg.ranksPerDimm;

    report.areaMm2 = pu.areaMm2();

    const double time = report.totalSeconds;
    const double pu_energy = pu.powerWatt() * cfg.numDimms * time;

    // One rank was simulated (possibly on a sample); every rank does
    // the same amount of work, so scale counts by ranks and sample.
    const size_t rows_per_rank =
        (params.n + cfg.totalRanks() - 1) / cfg.totalRanks();
    const size_t sim_rows = cfg.sampleRows == 0
                                ? rows_per_rank
                                : std::min(rows_per_rank, cfg.sampleRows);
    const double scale = double(rows_per_rank) / double(sim_rows) *
                         cfg.totalRanks();

    DramEnergy de;
    const double dram_energy =
        scale * (report.dram.activates * de.actEnergy +
                 report.dram.reads * de.readEnergy +
                 report.dram.writes * de.writeEnergy) +
        de.backgroundWatt * cfg.totalRanks() * time;

    report.energyJoule = pu_energy + dram_energy;
    report.powerWatt = time > 0 ? report.energyJoule / time : 0;
}

IronmanReport
IronmanModel::simulate() const
{
    IronmanReport report = lpnPhase(cfg.sort);
    spcotPhase(report);

    // SPCOT and LPN are decoupled and overlap (Sec. 5.1); COT
    // offloading back to the host overlaps generation, leaving a
    // small fixed control tail.
    const double control_tail = 10e-6;
    report.totalSeconds =
        std::max(report.spcotSeconds, report.lpnSeconds) + control_tail;
    rollupEnergy(report);
    return report;
}

IronmanReport
IronmanModel::simulateLpn(const SortOptions &override_sort) const
{
    IronmanReport report = lpnPhase(override_sort);
    report.totalSeconds = report.lpnSeconds;
    rollupEnergy(report);
    return report;
}

} // namespace ironman::nmp
