/**
 * @file
 * End-to-end performance/energy model of the Ironman accelerator
 * (Sec. 5): SPCOT on the DIMM module's ChaCha pipeline, LPN on the
 * Rank-NMP modules (memory-side cache + DDR4 rank timing), with the
 * two phases overlapped as in the paper ("the SPCOT and LPN
 * operations are decoupled, allowing us to overlap these two
 * operations").
 *
 * Methodology mirrors the paper's Ramulator/ZSim setup, with one
 * twist for tractability: the LPN access stream of the largest
 * parameter sets is simulated on a row-range sample (SMARTS-style)
 * and scaled — hit rates and DRAM service rates converge within a few
 * hundred thousand accesses (full-stream mode is a flag away).
 */

#ifndef IRONMAN_NMP_IRONMAN_MODEL_H
#define IRONMAN_NMP_IRONMAN_MODEL_H

#include <cstdint>

#include "nmp/area_power.h"
#include "nmp/index_sort.h"
#include "ot/ferret_params.h"
#include "sim/cache.h"
#include "sim/dram.h"
#include "sim/pipeline.h"

namespace ironman::nmp {

/** Hardware configuration of one simulated system. */
struct IronmanConfig
{
    unsigned numDimms = 2;              ///< PUs; Fig. 12 sweeps 1..8
    unsigned ranksPerDimm = 2;
    uint64_t cacheBytes = 256 * 1024;   ///< memory-side cache per rank
    unsigned cacheWays = 8;
    unsigned chachaCoresPerDimm = 4;    ///< area/power; feed the XOR tree
    unsigned pipelineStages = 8;

    /**
     * SPCOT engine: the protocol chains trees through the per-level
     * OT messages of one host session, so GGM expansion throughput is
     * a fixed number of pipelines at the 45 nm logic clock, not a
     * per-rank resource (Fig. 13(b)'s SPCOT curves are flat in the
     * rank count). 1 pipeline @ 350 MHz reproduces the paper's
     * absolute SPCOT latencies (e.g. 2^24 set, ChaCha 4-ary:
     * 2100 trees -> 16.4 ms, the floor of the Fig. 12 range).
     */
    unsigned spcotPipelines = 1;
    double spcotClockHz = 350e6;

    /// Rank-NMP service clock (command-rate matched to DDR4-2400).
    double logicClockHz = 1.2e9;

    sim::DramTimings dram;
    sim::DramGeometry geom;
    SortOptions sort;

    /// GGM expansion schedule (Ironman uses Hybrid; Fig. 8 ablation).
    sim::ExpandStrategy schedule = sim::ExpandStrategy::Hybrid;

    /// Rows of the LPN matrix simulated per rank before scaling
    /// (0 = simulate every row).
    size_t sampleRows = 200000;

    unsigned totalRanks() const { return numDimms * ranksPerDimm; }
    unsigned totalCores() const { return numDimms * chachaCoresPerDimm; }
};

/** Per-phase and roll-up results of one simulated extension. */
struct IronmanReport
{
    // Phase latencies for one OTE execution (seconds).
    double spcotSeconds = 0;
    double lpnSeconds = 0;
    double totalSeconds = 0;   ///< max(spcot, lpn) + serial tail

    // SPCOT pipeline details.
    sim::ExpandSchedule spcotSchedule;

    // LPN details (one representative rank; ranks are symmetric).
    sim::CacheStats cache;
    sim::DramStats dram;
    double lpnLogicSeconds = 0; ///< XOR-tree/cache service bound
    double lpnDramSeconds = 0;  ///< DRAM service bound

    // Energy for the full execution (J) and average power (W).
    double energyJoule = 0;
    double powerWatt = 0;
    double areaMm2 = 0;

    /** Output COTs per second of this execution. */
    double
    otThroughput(uint64_t usable_ots) const
    {
        return totalSeconds > 0 ? usable_ots / totalSeconds : 0;
    }
};

/** The simulator. */
class IronmanModel
{
  public:
    IronmanModel(const IronmanConfig &config,
                 const ot::FerretParams &params);

    /** Simulate one OTE execution end to end. */
    IronmanReport simulate() const;

    /**
     * Simulate only the LPN phase (used by the cache-sweep and
     * ablation benches). @p override_sort substitutes the config's
     * sorting options.
     */
    IronmanReport simulateLpn(const SortOptions &override_sort) const;

    const IronmanConfig &config() const { return cfg; }

  private:
    IronmanReport lpnPhase(const SortOptions &sort) const;
    void spcotPhase(IronmanReport &report) const;
    void rollupEnergy(IronmanReport &report) const;

    IronmanConfig cfg;
    ot::FerretParams params;
};

} // namespace ironman::nmp

#endif // IRONMAN_NMP_IRONMAN_MODEL_H
