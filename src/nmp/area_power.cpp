#include "nmp/area_power.h"

namespace ironman::nmp {

PrgCoreSpec
chaCha8Core()
{
    return PrgCoreSpec{"ChaCha8", 0.215, 45.33e-3, 512};
}

PrgCoreSpec
aes128Core()
{
    return PrgCoreSpec{"AES-128", 0.233, 35.05e-3, 128};
}

double
sramAreaMm2(uint64_t bytes)
{
    // Linear fit through the two Table 6 PU configurations (see
    // header): ~1.008 mm^2 per MB plus a small periphery constant.
    double mb = double(bytes) / (1024.0 * 1024.0);
    return 0.0096 + 1.008 * mb;
}

double
sramPowerWatt(uint64_t bytes)
{
    double mb = double(bytes) / (1024.0 * 1024.0);
    return 0.010 + 0.086 * mb;
}

double
PuSpec::areaMm2() const
{
    return logicAreaMm2 + chachaCores * chaCha8Core().areaMm2 +
           rankModules * sramAreaMm2(cacheBytes);
}

double
PuSpec::powerWatt() const
{
    return logicPowerWatt + chachaCores * chaCha8Core().powerWatt +
           rankModules * sramPowerWatt(cacheBytes);
}

} // namespace ironman::nmp
