/**
 * @file
 * Reference platforms Ironman is compared against in Sec. 6:
 *
 *  - the CPU baseline (Ferret on a 24-core Xeon): measured by actually
 *    running this repository's software protocol on the host, plus
 *    the paper's published per-execution numbers for cross-checking;
 *  - the GPU implementation (NVIDIA A6000): an analytic model
 *    calibrated to the paper's reported 5.88x-over-CPU throughput and
 *    44.1% / 50.2% SPCOT/LPN breakdown (we have no GPU — see the
 *    substitution table in DESIGN.md).
 */

#ifndef IRONMAN_NMP_REFERENCE_H
#define IRONMAN_NMP_REFERENCE_H

#include <cstdint>

#include "net/two_party.h"
#include "ot/ferret_params.h"

namespace ironman::nmp {

/** Measured software-OTE execution on the host CPU. */
struct CpuOteMeasurement
{
    double secondsPerExec = 0;   ///< wall time per extension
    double spcotSeconds = 0;     ///< sender-side SPCOT share
    double lpnSeconds = 0;       ///< sender-side LPN share
    double initSeconds = 0;      ///< base-COT setup (excluded, reported)
    uint64_t usableOts = 0;
    uint64_t wireBytes = 0;
    uint64_t spcotPrgOps = 0;    ///< sender PRG invocations (Fig. 7(a))

    double
    otsPerSecond() const
    {
        return secondsPerExec > 0 ? usableOts / secondsPerExec : 0;
    }
};

/**
 * Run @p executions real extensions of the software protocol (both
 * parties on this host) and return per-execution averages.
 *
 * @param threads Worker threads for each party's local LPN encode.
 */
CpuOteMeasurement measureCpuOte(const ot::FerretParams &params,
                                int threads, int executions = 1);

/**
 * The paper's Xeon-5220R per-execution latency (read off Fig. 1(b)),
 * for side-by-side reporting.
 */
double paperCpuSecondsPerExec(const ot::FerretParams &params);

/** Analytic A6000 model (Sec. 6.1). */
struct GpuReference
{
    static constexpr double speedupOverCpu = 5.88;
    static constexpr double spcotFraction = 0.441;
    static constexpr double lpnFraction = 0.502;

    /** GPU seconds per execution, given a CPU baseline. */
    static double
    secondsPerExec(double cpu_seconds)
    {
        return cpu_seconds / speedupOverCpu;
    }
};

} // namespace ironman::nmp

#endif // IRONMAN_NMP_REFERENCE_H
