/**
 * @file
 * Area, power and energy model of the Ironman-NMP processing unit.
 *
 * The primitive-core numbers are the paper's own synthesis results
 * (Table 2, 45 nm, Design Compiler): they are inputs to this model,
 * not measurements we can re-run without the ASIC flow. The SRAM
 * curve is a CACTI-flavoured linear fit calibrated against the two
 * published full-PU points of Table 6 (1.482 mm^2 @ 256 KB,
 * 2.995 mm^2 @ 1 MB, with 4 ChaCha cores and 2 rank caches per PU).
 * DRAM access energies use typical DDR4 constants (CACTI-3DD class).
 */

#ifndef IRONMAN_NMP_AREA_POWER_H
#define IRONMAN_NMP_AREA_POWER_H

#include <cstdint>

namespace ironman::nmp {

/** Synthesized primitive core (Table 2). */
struct PrgCoreSpec
{
    const char *name;
    double areaMm2;
    double powerWatt;
    unsigned outputBits;   ///< per fully-pipelined invocation

    /** Blocks of 128 bits per invocation. */
    unsigned blocksPerOp() const { return outputBits / 128; }
};

/** ChaCha8: 512-bit output, 0.215 mm^2, 45.33 mW (Table 2/6). */
PrgCoreSpec chaCha8Core();

/** AES-128: 128-bit output, 0.233 mm^2, 35.05 mW (Table 2). */
PrgCoreSpec aes128Core();

/** SRAM macro area for a memory-side cache of @p bytes (mm^2). */
double sramAreaMm2(uint64_t bytes);

/** SRAM leakage+clock power for a cache of @p bytes (W). */
double sramPowerWatt(uint64_t bytes);

/** DRAM energy constants for the energy roll-up (J per event). */
struct DramEnergy
{
    double actEnergy = 1.7e-9;     ///< one ACT+PRE pair
    double readEnergy = 8.0e-9;    ///< one 64-byte read burst
    double writeEnergy = 9.0e-9;   ///< one 64-byte write burst
    double backgroundWatt = 0.35;  ///< per active rank
};

/** One Ironman-NMP PU (Fig. 9(a)): DIMM module + 2 rank modules. */
struct PuSpec
{
    unsigned chachaCores = 4;
    uint64_t cacheBytes = 256 * 1024; ///< per rank module
    unsigned rankModules = 2;

    /// Fixed DIMM-module logic (XOR tree, buffers, control).
    static constexpr double logicAreaMm2 = 0.10;
    static constexpr double logicPowerWatt = 1.0567;

    double areaMm2() const;
    double powerWatt() const;
};

/** Reference points for comparisons (Sec. 6.1 / Table 6). */
struct ReferencePlatforms
{
    static constexpr double gpuPowerWatt = 300.0;  ///< NVIDIA A6000
    static constexpr double cpuPowerWatt = 150.0;  ///< 24-core Xeon TDP
    static constexpr double dramChipAreaMm2 = 100.0;
    static constexpr double lrdimmPowerWatt = 10.0;
};

} // namespace ironman::nmp

#endif // IRONMAN_NMP_AREA_POWER_H
