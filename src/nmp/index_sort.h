/**
 * @file
 * Offline index sorting for the memory-side cache (Sec. 5.3, Fig. 11).
 *
 * The LPN access stream (10 random reads of a 128-bit vector entry per
 * output row) is rearranged offline — legal because the code matrix A
 * is fixed — into a layout with far better locality:
 *
 *  - Column Swapping: columns are renumbered in first-touch order and
 *    the input vector is stored permuted, turning scattered column ids
 *    into a compact ascending range (spatial locality).
 *  - Row Look-ahead: within a window of W consecutive rows (bounded by
 *    the Rank-NMP's XorSum partial-sum buffer, one 128-bit slot per
 *    in-flight row), accesses are served in column order rather than
 *    row order; a Rowidx tag per access routes each fetched value to
 *    its row's partial sum. Windows alternate ascending/descending
 *    column order (boustrophedon) so each window re-touches the most
 *    recently cached tail of its predecessor (temporal locality).
 *
 * The transformation is a pure schedule change: XOR is commutative and
 * associative, so results are bit-identical (tested).
 */

#ifndef IRONMAN_NMP_INDEX_SORT_H
#define IRONMAN_NMP_INDEX_SORT_H

#include <cstdint>
#include <vector>

#include "common/block.h"
#include "ot/lpn.h"
#include "sim/cache.h"

namespace ironman::nmp {

/** Sorting options (each paper ablation toggles one). */
struct SortOptions
{
    bool columnSwap = true;
    bool rowLookahead = true;
    /// Look-ahead window in rows == XorSum buffer entries.
    size_t windowRows = 4096;
    /// Alternate window direction for cross-window temporal reuse.
    bool zigzag = true;
    /**
     * Replay the software path's access order instead of the
     * row-major stream: the SIMD gather-XOR kernels walk the
     * lane-transposed LpnIndexTape one 8-row group at a time,
     * tap-major within the group (tap i's 8 indices are one
     * contiguous tape line), with a row-major scalar tail. Only
     * meaningful with rowLookahead off — the look-ahead re-sorts the
     * window's accesses either way, so it subsumes this order.
     */
    bool laneTape = false;
};

/** The software-path access order (lane-tape replay, sorting off). */
inline SortOptions
softwareTapeOrder()
{
    SortOptions opt;
    opt.columnSwap = false;
    opt.rowLookahead = false;
    opt.zigzag = false;
    opt.laneTape = true;
    return opt;
}

/** Sorted CSR-like layout of a row range of the LPN matrix. */
struct SortedLpnLayout
{
    size_t rowBegin = 0;
    size_t rowCount = 0;
    size_t k = 0;
    unsigned d = 10;

    /// colidx[a]: column (in the *stored*, permuted numbering) of the
    /// a-th access in service order.
    std::vector<uint32_t> colidx;
    /// rowidx[a]: owning row (relative to rowBegin) of the a-th access.
    std::vector<uint32_t> rowidx;
    /// newToOld[c]: stored column c holds original column newToOld[c]
    /// (identity when column swapping is off).
    std::vector<uint32_t> newToOld;

    size_t accesses() const { return colidx.size(); }
};

/**
 * Build the sorted layout for rows [row0, row0+rows) of @p enc.
 * Deterministic; both the functional encoder and the cache simulator
 * replay the same stream.
 */
SortedLpnLayout buildSortedLayout(const ot::LpnEncoder &enc, uint64_t row0,
                                  size_t rows, const SortOptions &opt);

/**
 * Functional re-encode through the layout: inout[j] ^= XOR of the d
 * vector entries of row rowBegin+j. @p in is the *original* (not
 * permuted) length-k input; the layout's permutation is applied
 * internally. Must agree bit-for-bit with LpnEncoder::encodeBlocks.
 */
void encodeWithLayout(const SortedLpnLayout &layout, const Block *in,
                      Block *inout);

/**
 * Replay the layout's vector accesses against @p cache (16-byte
 * entries starting at byte 0) and optionally collect the 64-byte miss
 * line addresses in service order.
 */
sim::CacheStats simulateLayoutCache(const SortedLpnLayout &layout,
                                    sim::CacheSim &cache,
                                    std::vector<uint64_t> *miss_lines
                                        = nullptr);

} // namespace ironman::nmp

#endif // IRONMAN_NMP_INDEX_SORT_H
