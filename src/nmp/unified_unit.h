/**
 * @file
 * The Unified Unit (Sec. 5.2, Fig. 10): one XOR tree that acts as
 *
 *  - Key Generator (sender role): folds a GGM level's nodes into the
 *    per-slot sums K^i_c — all m of them, so m reduction passes;
 *  - Message Decoder (receiver role): folds the known nodes of a level
 *    into the single sum needed to recover the punctured child — one
 *    pass, writing the recovered node back to the Node Buffer.
 *
 * The functional half is shared with the protocol code (the sums must
 * equal GgmExpansion::levelSums); the timing half models a 2x-input
 * XOR tree fed by x ChaCha cores, used by the role-switching analysis
 * of Fig. 16.
 */

#ifndef IRONMAN_NMP_UNIFIED_UNIT_H
#define IRONMAN_NMP_UNIFIED_UNIT_H

#include <cstdint>
#include <vector>

#include "common/block.h"
#include "crypto/seed_expander.h"

namespace ironman::nmp {

/** Role the host assigns to the unit for one OTE execution. */
enum class UnitRole
{
    KeyGenerator,   ///< sender
    MessageDecoder, ///< receiver
};

/** XOR-tree model of the Unified Unit. */
class UnifiedUnit
{
  public:
    /** @param chacha_cores x: cores feeding the 2x-input tree. */
    explicit UnifiedUnit(unsigned chacha_cores);

    /** Tree fan-in (blocks folded per cycle). */
    unsigned fanIn() const { return 2 * cores; }

    /**
     * Functional reduction: per-slot XOR sums of a level's nodes
     * (node j contributes to slot j % arity). Matches
     * GgmExpansion::levelSums by construction — tested.
     */
    static std::vector<Block> levelSums(const std::vector<Block> &nodes,
                                        unsigned arity);

    /** Span variant: @p sums receives @p arity blocks. */
    static void levelSumsInto(const Block *nodes, size_t count,
                              unsigned arity, Block *sums);

    /**
     * Functional Key-Generator pass over the unified seed-expansion
     * interface: expand @p count parents one level (children to
     * @p children, count*arity blocks) and fold the per-slot sums
     * into @p sums — the datapath Fig. 10 implements, expressed
     * against the same SeedExpander the protocol stack uses.
     */
    static void expandAndReduce(crypto::SeedExpander &prg,
                                const Block *parents, size_t count,
                                unsigned arity, Block *children,
                                Block *sums);

    /**
     * Cycles to process one level of @p nodes nodes with arity m in
     * the given role: the sender folds every slot (m passes), the
     * receiver folds one slot and spends one cycle on the node-buffer
     * write-back.
     */
    uint64_t levelCycles(uint64_t nodes, unsigned arity,
                         UnitRole role) const;

    /** Cycles for a whole tree (all levels, leaves l, arity m). */
    uint64_t treeCycles(uint64_t leaves, unsigned arity,
                        UnitRole role) const;

  private:
    unsigned cores;
};

} // namespace ironman::nmp

#endif // IRONMAN_NMP_UNIFIED_UNIT_H
