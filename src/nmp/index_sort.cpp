#include "nmp/index_sort.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace ironman::nmp {

SortedLpnLayout
buildSortedLayout(const ot::LpnEncoder &enc, uint64_t row0, size_t rows,
                  const SortOptions &opt)
{
    const auto &p = enc.params();
    SortedLpnLayout layout;
    layout.rowBegin = row0;
    layout.rowCount = rows;
    layout.k = p.k;
    layout.d = p.d;

    // Raw indices for the whole row range.
    std::vector<uint32_t> raw(rows * p.d);
    ot::LpnEncodeScratch scratch;
    enc.rowIndicesBatch(row0, rows, raw.data(), scratch);

    // --- Column Swapping: first-touch renumbering --------------------
    std::vector<uint32_t> oldToNew;
    if (opt.columnSwap) {
        oldToNew.assign(p.k, UINT32_MAX);
        layout.newToOld.reserve(p.k);
        for (uint32_t old_col : raw) {
            if (oldToNew[old_col] == UINT32_MAX) {
                oldToNew[old_col] = uint32_t(layout.newToOld.size());
                layout.newToOld.push_back(old_col);
            }
        }
        // Untouched columns keep a stable order at the end.
        for (uint32_t c = 0; c < p.k; ++c) {
            if (oldToNew[c] == UINT32_MAX) {
                oldToNew[c] = uint32_t(layout.newToOld.size());
                layout.newToOld.push_back(c);
            }
        }
    } else {
        layout.newToOld.resize(p.k);
        std::iota(layout.newToOld.begin(), layout.newToOld.end(), 0);
    }

    auto mapped = [&](size_t a) -> uint32_t {
        return opt.columnSwap ? oldToNew[raw[a]] : raw[a];
    };

    // --- Row Look-ahead: window-sorted service order ------------------
    layout.colidx.resize(rows * p.d);
    layout.rowidx.resize(rows * p.d);

    if (!opt.rowLookahead) {
        if (opt.laneTape) {
            // The lane-transposed tape's service order: per 8-row
            // group, tap-major (each tap's 8 indices are one
            // contiguous tape line in the software kernels), with the
            // scalar row-major tail the kernels also have.
            constexpr size_t lane = ot::LpnIndexTape::kLane;
            size_t out = 0;
            size_t r0 = 0;
            for (; r0 + lane <= rows; r0 += lane)
                for (unsigned i = 0; i < p.d; ++i)
                    for (size_t x = 0; x < lane; ++x) {
                        layout.colidx[out] = mapped((r0 + x) * p.d + i);
                        layout.rowidx[out] = uint32_t(r0 + x);
                        ++out;
                    }
            for (; r0 < rows; ++r0)
                for (unsigned i = 0; i < p.d; ++i) {
                    layout.colidx[out] = mapped(r0 * p.d + i);
                    layout.rowidx[out] = uint32_t(r0);
                    ++out;
                }
            IRONMAN_CHECK(out == layout.colidx.size());
            return layout;
        }
        for (size_t r = 0; r < rows; ++r) {
            for (unsigned i = 0; i < p.d; ++i) {
                size_t a = r * p.d + i;
                layout.colidx[a] = mapped(a);
                layout.rowidx[a] = uint32_t(r);
            }
        }
        return layout;
    }

    const size_t window = std::max<size_t>(opt.windowRows, 1);
    std::vector<std::pair<uint32_t, uint32_t>> bucket; // (col, row)
    size_t out = 0;
    size_t window_id = 0;
    for (size_t wr = 0; wr < rows; wr += window, ++window_id) {
        size_t count = std::min(window, rows - wr);
        bucket.clear();
        bucket.reserve(count * p.d);
        for (size_t r = wr; r < wr + count; ++r)
            for (unsigned i = 0; i < p.d; ++i)
                bucket.emplace_back(mapped(r * p.d + i), uint32_t(r));

        bool descending = opt.zigzag && (window_id & 1);
        if (descending) {
            std::sort(bucket.begin(), bucket.end(),
                      [](const auto &a, const auto &b) {
                          return a.first > b.first;
                      });
        } else {
            std::sort(bucket.begin(), bucket.end());
        }

        for (const auto &[col, row] : bucket) {
            layout.colidx[out] = col;
            layout.rowidx[out] = row;
            ++out;
        }
    }
    IRONMAN_CHECK(out == layout.colidx.size());
    return layout;
}

void
encodeWithLayout(const SortedLpnLayout &layout, const Block *in,
                 Block *inout)
{
    for (size_t a = 0; a < layout.accesses(); ++a) {
        uint32_t stored_col = layout.colidx[a];
        uint32_t orig_col = layout.newToOld[stored_col];
        inout[layout.rowidx[a]] ^= in[orig_col];
    }
}

sim::CacheStats
simulateLayoutCache(const SortedLpnLayout &layout, sim::CacheSim &cache,
                    std::vector<uint64_t> *miss_lines)
{
    sim::CacheStats before = cache.stats();
    const unsigned line = cache.config().lineBytes;
    for (size_t a = 0; a < layout.accesses(); ++a) {
        uint64_t addr = uint64_t(layout.colidx[a]) * sizeof(Block);
        if (!cache.access(addr) && miss_lines)
            miss_lines->push_back(addr / line * line);
    }
    sim::CacheStats delta;
    delta.hits = cache.stats().hits - before.hits;
    delta.misses = cache.stats().misses - before.misses;
    return delta;
}

} // namespace ironman::nmp
