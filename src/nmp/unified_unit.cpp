#include "nmp/unified_unit.h"

#include "common/logging.h"

namespace ironman::nmp {

UnifiedUnit::UnifiedUnit(unsigned chacha_cores) : cores(chacha_cores)
{
    IRONMAN_CHECK(cores >= 1);
}

std::vector<Block>
UnifiedUnit::levelSums(const std::vector<Block> &nodes, unsigned arity)
{
    std::vector<Block> sums(arity);
    levelSumsInto(nodes.data(), nodes.size(), arity, sums.data());
    return sums;
}

void
UnifiedUnit::levelSumsInto(const Block *nodes, size_t count,
                           unsigned arity, Block *sums)
{
    for (unsigned c = 0; c < arity; ++c)
        sums[c] = Block::zero();
    for (size_t j = 0; j < count; ++j)
        sums[j % arity] ^= nodes[j];
}

void
UnifiedUnit::expandAndReduce(crypto::SeedExpander &prg,
                             const Block *parents, size_t count,
                             unsigned arity, Block *children, Block *sums)
{
    prg.expand(parents, children, count, arity);
    levelSumsInto(children, count * arity, arity, sums);
}

uint64_t
UnifiedUnit::levelCycles(uint64_t nodes, unsigned arity,
                         UnitRole role) const
{
    // One pass folds the slot's nodes/arity members through the
    // 2x-wide tree; log2(fan-in) drain cycles hide under pipelining.
    uint64_t per_slot = (nodes / arity + fanIn() - 1) / fanIn();
    switch (role) {
      case UnitRole::KeyGenerator:
        return per_slot * arity;       // all m sums
      case UnitRole::MessageDecoder:
        return per_slot + 1;           // one sum + write-back
    }
    IRONMAN_PANIC("unknown role");
}

uint64_t
UnifiedUnit::treeCycles(uint64_t leaves, unsigned arity,
                        UnitRole role) const
{
    uint64_t total = 0;
    for (uint64_t width = arity; width <= leaves; width *= arity)
        total += levelCycles(width, arity, role);
    return total;
}

} // namespace ironman::nmp
