/**
 * @file
 * Merge two parties' Chrome-trace exports into ONE timeline.
 *
 *   ./trace_merge client.json server.json > merged.json
 *   ./trace_merge client.json server.json -o merged.json
 *
 * Inputs are ironman.trace.v1 documents (common/trace.h): the client
 * (party 0) export carries `otherData.clock_offset_us` — the Cristian
 * estimate of (server clock - client clock) measured over the infer
 * hello->accept RTT — and the server (party 1) export carries the
 * spans the session recorded under the same wire-propagated trace id.
 * The merge rewrites every server event's `ts` onto the client clock
 * (ts' = ts - offset) and concatenates both event streams, so opening
 * the output in chrome://tracing or Perfetto shows the client's
 * submit->reconstruct span enclosing the server's per-layer work with
 * the wire turnarounds between them.
 *
 * The exporter writes one event per line precisely so this tool can
 * stay textual: no JSON library, just line splitting plus one numeric
 * field rewrite. Party roles are read from `otherData.party`, not
 * argument order.
 */

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "trace_merge: cannot read %s\n",
                     path.c_str());
        std::exit(1);
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** First integer following `"key":` in @p doc (0 when absent). */
long long
numberField(const std::string &doc, const std::string &key)
{
    const std::string needle = "\"" + key + "\":";
    const size_t pos = doc.find(needle);
    if (pos == std::string::npos)
        return 0;
    return std::atoll(doc.c_str() + pos + needle.size());
}

/**
 * The event lines of a v1 export: everything between the
 * `"traceEvents":[` line and the closing `],`, one object per line,
 * stripped of the inter-event commas.
 */
std::vector<std::string>
eventLines(const std::string &doc, const std::string &path)
{
    const size_t open = doc.find("\"traceEvents\":[");
    const size_t close = doc.find("\n],", open);
    if (open == std::string::npos || close == std::string::npos) {
        std::fprintf(stderr,
                     "trace_merge: %s is not an ironman.trace.v1 "
                     "export\n",
                     path.c_str());
        std::exit(1);
    }
    const size_t body0 = doc.find('\n', open) + 1;
    std::vector<std::string> lines;
    size_t at = body0;
    while (at < close) {
        size_t eol = doc.find('\n', at);
        if (eol == std::string::npos || eol > close)
            eol = close;
        std::string line = doc.substr(at, eol - at);
        while (!line.empty() &&
               (line.back() == ',' || line.back() == '\r'))
            line.pop_back();
        if (!line.empty())
            lines.push_back(std::move(line));
        at = eol + 1;
    }
    return lines;
}

/** Rewrite `"ts":N` to `"ts":N-offset` (clamped at 0); metadata
 * events carry no ts and pass through unchanged. */
std::string
shiftTs(const std::string &line, long long offset_us)
{
    const size_t pos = line.find("\"ts\":");
    if (pos == std::string::npos || offset_us == 0)
        return line;
    const size_t num0 = pos + 5;
    size_t num1 = num0;
    while (num1 < line.size() &&
           (std::isdigit((unsigned char)line[num1]) ||
            line[num1] == '-'))
        ++num1;
    const long long ts = std::atoll(line.c_str() + num0);
    long long shifted = ts - offset_us;
    if (shifted < 0)
        shifted = 0;
    return line.substr(0, num0) + std::to_string(shifted) +
           line.substr(num1);
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> inputs;
    std::string out_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-o") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "trace_merge: missing value for -o\n");
                return 2;
            }
            out_path = argv[++i];
        } else {
            inputs.push_back(arg);
        }
    }
    if (inputs.size() != 2) {
        std::fprintf(stderr,
                     "usage: trace_merge CLIENT.json SERVER.json "
                     "[-o MERGED.json]\n");
        return 2;
    }

    const std::string doc_a = readFile(inputs[0]);
    const std::string doc_b = readFile(inputs[1]);
    const bool a_is_client = numberField(doc_a, "party") == 0;
    const std::string &client = a_is_client ? doc_a : doc_b;
    const std::string &server = a_is_client ? doc_b : doc_a;
    const std::string &client_path = a_is_client ? inputs[0] : inputs[1];
    const std::string &server_path = a_is_client ? inputs[1] : inputs[0];

    // The client measured (server clock - client clock); shifting the
    // server's timestamps by -offset lands them on the client clock,
    // which the merged document uses as its one timebase.
    const long long offset_us = numberField(client, "clock_offset_us");

    std::vector<std::string> events =
        eventLines(client, client_path);
    const size_t client_events = events.size();
    for (const std::string &line : eventLines(server, server_path))
        events.push_back(shiftTs(line, offset_us));

    std::string out;
    out.reserve(client.size() + server.size());
    out += "{\n\"traceEvents\":[\n";
    for (size_t i = 0; i < events.size(); ++i) {
        out += events[i];
        if (i + 1 < events.size())
            out += ',';
        out += '\n';
    }
    char tail[256];
    std::snprintf(tail, sizeof(tail),
                  "],\n\"otherData\":{\"schema\":\"ironman.trace."
                  "merged.v1\",\"clock_offset_us\":%lld,"
                  "\"client_events\":%zu,\"server_events\":%zu}\n}\n",
                  offset_us, client_events,
                  events.size() - client_events);
    out += tail;

    if (out_path.empty()) {
        std::fwrite(out.data(), 1, out.size(), stdout);
    } else {
        std::ofstream f(out_path, std::ios::binary);
        if (!f) {
            std::fprintf(stderr, "trace_merge: cannot write %s\n",
                         out_path.c_str());
            return 1;
        }
        f << out;
    }
    std::fprintf(stderr,
                 "trace_merge: %zu client + %zu server events, clock "
                 "offset %lld us\n",
                 client_events, events.size() - client_events,
                 offset_us);
    return 0;
}
