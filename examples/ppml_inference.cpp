/**
 * @file
 * Private-inference planner: for a model / framework / network
 * setting, print the end-to-end latency decomposition with the CPU
 * software OT stack vs the Ironman accelerator — the per-deployment
 * view behind Table 5.
 *
 * Run: ./ppml_inference [model] [framework] [lan|wan]
 *   model:     mobilenetv2 squeezenet resnet18 resnet34 resnet50
 *              densenet121 vit bert-base bert-large gpt2-large
 *   framework: cryptflow2 cheetah bolt sirnn
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "nmp/ironman_model.h"
#include "ppml/estimator.h"

using namespace ironman;
using namespace ironman::ppml;

namespace {

ModelProfile
pickModel(const std::string &name)
{
    for (const ModelProfile &m : allModels()) {
        std::string lower;
        for (char c : m.name)
            lower.push_back(c == ' ' ? '-' : char(std::tolower(c)));
        if (lower == name)
            return m;
    }
    std::fprintf(stderr, "unknown model '%s'\n", name.c_str());
    std::exit(1);
}

FrameworkModel
pickFramework(const std::string &name)
{
    if (name == "cryptflow2") return FrameworkModel::crypTFlow2();
    if (name == "cheetah") return FrameworkModel::cheetah();
    if (name == "bolt") return FrameworkModel::bolt();
    if (name == "sirnn") return FrameworkModel::sirnn();
    std::fprintf(stderr, "unknown framework '%s'\n", name.c_str());
    std::exit(1);
}

void
show(const char *label, const LatencyBreakdown &b)
{
    std::printf("  %-8s total %8.2f s  =  linear %7.2f + OTE %7.2f "
                "+ online %6.2f + comm %6.2f + other %5.2f   "
                "(OTE share %4.1f%%)\n",
                label, b.totalSeconds(), b.linearSeconds,
                b.oteComputeSeconds, b.onlineComputeSeconds,
                b.commSeconds, b.otherSeconds, b.oteFraction() * 100);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string model_name = argc > 1 ? argv[1] : "resnet50";
    std::string fw_name = argc > 2 ? argv[2] : "cheetah";
    std::string net_name = argc > 3 ? argv[3] : "lan";

    ModelProfile model = pickModel(model_name);
    FrameworkModel framework = pickFramework(fw_name);
    net::NetworkModel network =
        net_name == "wan" ? net::wanNetwork() : net::lanNetwork();

    if (!framework.supports(model)) {
        std::fprintf(stderr, "%s does not evaluate %s\n",
                     framework.name().c_str(), model.name.c_str());
        return 1;
    }

    // OT engines: a representative full-thread CPU rate and a live
    // Ironman simulation at the paper's largest configuration.
    OtEngine cpu = OtEngine::cpu(2.5e6);
    nmp::IronmanConfig cfg;
    cfg.numDimms = 8;
    cfg.cacheBytes = 1024 * 1024;
    cfg.sampleRows = 100000;
    ot::FerretParams params = ot::paperParamSet(22);
    nmp::IronmanReport rep = nmp::IronmanModel(cfg, params).simulate();
    OtEngine ironman =
        OtEngine::ironman(rep.otThroughput(params.usableOts()));

    std::printf("%s on %s over %s\n", model.name.c_str(),
                framework.name().c_str(), network.name);
    std::printf("  nonlinear elements: %.2f M, linear %.2f GMAC\n",
                model.totalNonlinearElements() / 1e6, model.linearGmacs);
    std::printf("  Ironman engine: %.0f M COT/s "
                "(16 ranks, 1 MB caches, simulated)\n\n",
                ironman.cotsPerSecond / 1e6);

    LatencyBreakdown base = estimateInference(model, framework, network,
                                              cpu);
    LatencyBreakdown ours = estimateInference(model, framework, network,
                                              ironman);
    show("CPU", base);
    show("Ironman", ours);
    std::printf("\n  speedup: %.2fx\n",
                base.totalSeconds() / ours.totalSeconds());
    return 0;
}
