/**
 * @file
 * Quickstart: generate a million COT correlations with the PCG-style
 * OT extension, then use two of them to run the classic 1-out-of-2 OT
 * of Fig. 2 — the sender offers two messages, the receiver learns
 * exactly the chosen one.
 *
 * Run: ./quickstart
 */

#include <cstdio>
#include <string>

#include "common/rng.h"
#include "common/stats.h"
#include "crypto/crhf.h"
#include "net/two_party.h"
#include "ot/base_cot.h"
#include "ot/chosen_ot.h"
#include "ot/ferret.h"
#include "ot/ferret_params.h"

using namespace ironman;

int
main()
{
    // 1. Pick the Table 4 parameter set that outputs ~2^20 COTs per
    //    extension, with Ironman's 4-ary ChaCha8 GGM trees.
    ot::FerretParams params = ot::paperParamSet(20);
    std::printf("parameter set %s: n=%zu k=%zu t=%zu l=%zu -> %zu "
                "usable COTs/extension\n",
                params.name.c_str(), params.n, params.k, params.t,
                params.treeLeaves(), params.usableOts());

    // 2. One-time initialization: base COTs (trusted dealer stands in
    //    for the PKC base-OT phase; see DESIGN.md).
    Rng dealer(42);
    Block delta = dealer.nextBlock();
    auto [base_s, base_r] =
        ot::dealBaseCots(dealer, delta, params.reservedCots());

    // 3. Run one extension with the two parties on two threads.
    std::vector<Block> sender_q(params.usableOts());
    std::vector<Block> recv_t(params.usableOts());
    BitVec recv_choice;
    Timer timer;
    auto wire = net::runTwoParty(
        [&](net::Channel &ch) {
            ot::FerretCotSender sender(ch, params, delta,
                                       std::move(base_s.q));
            sender.setThreads(8);
            Rng rng(1);
            sender.extendInto(rng, sender_q.data());
        },
        [&](net::Channel &ch) {
            ot::FerretCotReceiver receiver(ch, params,
                                           std::move(base_r.choice),
                                           std::move(base_r.t));
            receiver.setThreads(8);
            Rng rng(2);
            receiver.extendInto(rng, recv_choice, recv_t.data());
        });
    double secs = timer.seconds();

    std::printf("extension: %.3f s, %.2f M COT/s, %.1f KB on the wire "
                "(%.3f bytes/COT)\n",
                secs, sender_q.size() / secs / 1e6,
                wire.totalBytes / 1024.0,
                double(wire.totalBytes) / sender_q.size());

    // 4. Spot-check the correlation t = q ^ b*Delta.
    size_t ok = 0;
    for (size_t i = 0; i < sender_q.size(); ++i)
        ok += (recv_t[i] ==
               (sender_q[i] ^ scalarMul(recv_choice.get(i), delta)));
    std::printf("correlation check: %zu / %zu valid\n", ok,
                sender_q.size());

    // 5. Use one COT as a real oblivious transfer (Fig. 2): the
    //    receiver picks message 1 and must learn only that one.
    std::string secret0 = "launch code alpha";
    std::string secret1 = "launch code omega";
    Block m0 = Block::fromUint64(0xa1fa), m1 = Block::fromUint64(0x03e6a);
    BitVec choice(1);
    choice.set(0, true);

    crypto::Crhf crhf;
    Block delivered;
    net::runTwoParty(
        [&](net::Channel &ch) {
            ot::ChosenOtScratch scratch;
            ot::chosenOtSend(ch, crhf, &m0, &m1, 1, delta,
                             sender_q.data(), /*tweak=*/9000, scratch);
        },
        [&](net::Channel &ch) {
            ot::ChosenOtScratch scratch;
            ot::chosenOtRecv(ch, crhf, choice, recv_choice, 0,
                             recv_t.data(), 1, &delivered,
                             /*tweak=*/9000, scratch);
        });
    std::printf("oblivious transfer: receiver chose 1 and decoded %s\n",
                delivered == m1 ? secret1.c_str() : secret0.c_str());
    return ok == sender_q.size() && delivered == m1 ? 0 : 1;
}
