/**
 * @file
 * Private-inference client demo: secret-share an input image, drive a
 * served GMW MLP inference against ./infer_server, reconstruct the
 * output, and check it against the plaintext reference.
 *
 *   ./infer_client --tcp 127.0.0.1:17617 --cot-tcp 127.0.0.1:17618
 *   ./infer_client --tcp 127.0.0.1:17617 --supply engine
 *   ./infer_client --model mlp-32x16x10 --width 24 --images 8
 *   ./infer_client --tcp ... --cot-tcp ... --depth 8    # pipelined
 *   ./infer_client --tcp ... --cot-tcp ... --depth auto # RTT-tuned
 *   ./infer_client --tcp ... --cot-tcp ... --stream     # streaming
 *   ./infer_client --tcp ... --cot-tcp ... --ripple     # A/B baseline
 *   ./infer_client --tcp ... --cot-tcp ... --unpacked   # PR 5 wire
 *
 * Default supply is the reservoir: the client opens two sessions of
 * opposite roles on the server's COT service and stocks them in the
 * background while the online phase runs. Exit code 0 iff every
 * output matches the plaintext forward pass within the model's
 * truncation bound.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/metrics.h"
#include "common/stats.h"
#include "common/trace.h"
#include "infer/infer_client.h"
#include "ppml/model_zoo.h"

using namespace ironman;

namespace {

bool
parseHostPort(const std::string &hp, std::string *host, uint16_t *port)
{
    const size_t colon = hp.rfind(':');
    if (colon == std::string::npos) {
        *port = uint16_t(std::atoi(hp.c_str()));
        return *port != 0;
    }
    *host = hp.substr(0, colon);
    *port = uint16_t(std::atoi(hp.c_str() + colon + 1));
    return *port != 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string host = "127.0.0.1", cot_host = "127.0.0.1";
    uint16_t port = 0, cot_port = 0;
    std::string model_name = "mlp-16x8x4";
    unsigned images = 4;
    bool chaos = false;
    std::string trace_file;
    infer::InferClient::Options opt;
    opt.batch = 2;
    opt.supply = infer::SupplyKind::Reservoir;
    opt.setupSeed = 0x5eedULL ^ uint64_t(::getpid()) << 16;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--tcp") {
            if (!parseHostPort(next(), &host, &port)) {
                std::fprintf(stderr, "bad --tcp\n");
                return 2;
            }
        } else if (arg == "--cot-tcp") {
            if (!parseHostPort(next(), &cot_host, &cot_port)) {
                std::fprintf(stderr, "bad --cot-tcp\n");
                return 2;
            }
        } else if (arg == "--model") {
            model_name = next();
        } else if (arg == "--width") {
            opt.width = unsigned(std::atoi(next()));
        } else if (arg == "--batch") {
            opt.batch = uint32_t(std::atoi(next()));
        } else if (arg == "--images") {
            images = unsigned(std::atoi(next()));
        } else if (arg == "--seed") {
            opt.setupSeed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--supply") {
            const std::string s = next();
            opt.supply = s == "engine" ? infer::SupplyKind::Engine
                                       : infer::SupplyKind::Reservoir;
        } else if (arg == "--depth") {
            const std::string d = next();
            if (d == "auto")
                opt.depthAuto = true;
            else
                opt.depth = uint16_t(std::atoi(d.c_str()));
        } else if (arg == "--ripple") {
            opt.ladderCmp = false;
        } else if (arg == "--stream") {
            opt.streamCommit = true;
        } else if (arg == "--unpacked") {
            opt.packedWire = false;
        } else if (arg == "--chaos") {
            // Survive a restarting server: reconnect under backoff and
            // resubmit uncommitted requests, narrating every retry.
            chaos = true;
            opt.autoReconnect = true;
            opt.retry.maxAttempts = 10; // outlast a slow restart
            opt.retryHook = [](unsigned attempt, uint64_t backoff_ms,
                               const std::string &what) {
                std::fprintf(stderr,
                             "infer_client: retry %u in %llu ms (%s)\n",
                             attempt, (unsigned long long)backoff_ms,
                             what.c_str());
            };
        } else if (arg == "--trace") {
            // Record locally AND propagate the trace id over the
            // handshake so the server's export joins this timeline.
            trace_file = next();
            opt.traceWire = true;
        } else {
            std::fprintf(
                stderr,
                "usage: infer_client --tcp HOST:PORT "
                "[--cot-tcp HOST:PORT] [--model NAME] [--width W] "
                "[--batch B] [--images N] [--supply engine|reservoir] "
                "[--depth D|auto] [--stream] [--ripple] [--unpacked] "
                "[--seed S] [--chaos] [--trace FILE]\n");
            return 2;
        }
    }

    if (!trace_file.empty()) {
        trace::setEnabled(true);
        trace::setParty(0); // the inference client is MPC party 0
        trace::setThreadLabel("client");
    }

    const ppml::MlpModelSpec *spec = ppml::findMlpModel(model_name);
    if (!spec) {
        std::fprintf(stderr, "unknown model %s; zoo:\n",
                     model_name.c_str());
        for (const auto &s : ppml::inferenceZoo())
            std::fprintf(stderr, "  %u  %s\n", s.id, s.name.c_str());
        return 2;
    }
    opt.modelId = spec->id;

    if (opt.supply == infer::SupplyKind::Reservoir && cot_port == 0) {
        std::fprintf(stderr, "infer_client: reservoir supply needs "
                             "--cot-tcp (the server prints its COT "
                             "port), or pass --supply engine\n");
        return 2;
    }

    std::unique_ptr<infer::InferClient> client;
    try {
        client =
            opt.supply == infer::SupplyKind::Reservoir
                ? infer::InferClient::connectTcpReservoir(
                      host, port, cot_host, cot_port, opt)
                : infer::InferClient::connectTcp(host, port, opt);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "infer_client: connect failed: %s\n",
                     e.what());
        return 1;
    }
    std::printf("infer_client: session %llu, %s, width %u, batch %u, "
                "supply %s, depth %u%s, %s wire, %s comparison%s "
                "(%llu COTs/image/direction)\n",
                (unsigned long long)client->sessionId(),
                spec->name.c_str(), opt.width, opt.batch,
                supplyKindName(client->supply()),
                client->negotiatedDepth(),
                opt.depthAuto ? " (auto)" : "",
                client->packedWire() ? "packed" : "unpacked",
                ppml::cmpModeName(client->comparisonMode()),
                client->streaming() ? ", streaming commits" : "",
                (unsigned long long)spec->cotsPerImage(
                    opt.width, client->comparisonMode()));
    if (opt.depthAuto)
        std::printf("infer_client: measured handshake RTT %llu us\n",
                    (unsigned long long)client->measuredRttUs());

    const int64_t bound = ppml::mlpTruncationErrorBound(*spec);
    std::vector<std::vector<int64_t>> inputs;
    for (unsigned r = 0; r * opt.batch < images; ++r)
        inputs.push_back(
            ppml::sampleMlpInput(*spec, 100 + r, opt.batch));

    unsigned ok = 0;
    Timer timer;
    // Issue/drain halves: with --depth > 1 the client keeps that many
    // requests in flight and commits them as one joint evaluation.
    for (const auto &input : inputs)
        client->submit(input);
    auto results = client->drain();
    // A request whose Commit raced a server loss comes back as a
    // typed failure — the library won't replay it (the server may
    // have answered already). This demo's requests are idempotent, so
    // app-level retry is safe and --chaos completes every image.
    if (chaos) {
        for (size_t r = 0; r < results.size(); ++r) {
            if (results[r].ok)
                continue;
            std::fprintf(stderr,
                         "infer_client: request %zu failed (%s); "
                         "retrying at the app level\n",
                         r, results[r].error.c_str());
            client->submit(inputs[r]);
            results[r] = client->collect();
        }
    }
    const double secs = timer.seconds();

    const unsigned done = unsigned(inputs.size()) * opt.batch;
    for (size_t r = 0; r < results.size(); ++r) {
        const std::vector<int64_t> &out = results[r].outputs;
        const std::vector<int64_t> plain =
            ppml::mlpPlainForward(*spec, inputs[r]);
        for (size_t i = 0; i < out.size(); ++i)
            ok += std::llabs(out[i] - plain[i]) <= bound;
        if (r == 0)
            for (unsigned i = 0; i < spec->outputDim(); ++i)
                std::printf("  y[%u] secure %lld plain %lld\n", i,
                            (long long)out[i], (long long)plain[i]);
    }
    const size_t outputs = size_t(done) * spec->outputDim();

    std::printf("per-layer online cost (last commit, party-0 view):\n");
    for (const ppml::MlpLayerStat &st : client->layerStats())
        std::printf("  %-8s | %7zu COTs | %9llu B | %3u rounds\n",
                    st.label.c_str(), st.cots,
                    (unsigned long long)st.bytes, st.rounds);
    client->close();

    if (chaos)
        std::printf("infer_client: survived %llu reconnects\n",
                    (unsigned long long)client->reconnects());
    // Client-side submit->reconstruct latency, from the same process
    // registry the daemons scrape (see common/metrics.h).
    const metrics::Histogram::Snapshot lat =
        metrics::Registry::instance().histogramSnapshot(
            "infer_client_request_latency_us");
    if (lat.count > 0)
        std::printf("infer_client: request latency (us): %llu samples, "
                    "p50 %llu, p90 %llu, p99 %llu, mean %.0f\n",
                    (unsigned long long)lat.count,
                    (unsigned long long)lat.p50,
                    (unsigned long long)lat.p90,
                    (unsigned long long)lat.p99,
                    double(lat.sum) / double(lat.count));
    if (!trace_file.empty()) {
        if (trace::writeChromeTrace(trace_file))
            std::printf("infer_client: trace written to %s "
                        "(trace id %016llx, clock offset %lld us)\n",
                        trace_file.c_str(),
                        (unsigned long long)client->traceId(),
                        (long long)client->peerClockOffsetUs());
        else
            std::fprintf(stderr,
                         "infer_client: cannot write trace %s\n",
                         trace_file.c_str());
    }
    std::printf("infer_client: %u images in %.3f s -> %.1f images/s; "
                "%zu COTs, %.1f KB online sent, %.1f KB preproc sent; "
                "%zu/%zu outputs within +/-%lld of plaintext\n",
                done, secs, done / secs, client->cotsConsumed(),
                client->onlineBytesSent() / 1024.0,
                client->preprocBytesSent() / 1024.0, size_t(ok),
                outputs, (long long)bound);
    return ok == outputs ? 0 : 1;
}
