/**
 * @file
 * Design-space exploration of the Ironman-NMP accelerator: sweep rank
 * count and memory-side cache size for one OTE parameter set and
 * print latency / throughput / hit rate / area / power — the view an
 * architect uses to pick the Sec. 6 configurations.
 *
 * Run: ./nmp_design_space [log2_ots=20]
 */

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "nmp/ironman_model.h"
#include "ot/ferret_params.h"

using namespace ironman;

int
main(int argc, char **argv)
{
    int log_ots = argc > 1 ? std::atoi(argv[1]) : 20;
    ot::FerretParams params = ot::paperParamSet(log_ots);

    std::printf("Ironman design space, parameter set %s "
                "(n=%zu, k=%zu, t=%zu)\n\n",
                params.name.c_str(), params.n, params.k, params.t);
    std::printf("%6s %8s | %9s %9s %9s | %7s %9s | %8s %7s\n", "ranks",
                "cache", "spcot_ms", "lpn_ms", "total_ms", "hit%",
                "MCOT/s", "mm^2/PU", "W");

    for (unsigned dimms : {1u, 2u, 4u, 8u}) {
        for (uint64_t cache_kb : {256u, 1024u}) {
            nmp::IronmanConfig cfg;
            cfg.numDimms = dimms;
            cfg.cacheBytes = cache_kb * 1024;
            cfg.sampleRows = 150000;
            nmp::IronmanModel model(cfg, params);
            nmp::IronmanReport r = model.simulate();
            std::printf("%6u %6" PRIu64 "KB | %9.3f %9.3f %9.3f | "
                        "%6.1f%% %9.1f | %8.3f %7.3f\n",
                        cfg.totalRanks(), cache_kb, r.spcotSeconds * 1e3,
                        r.lpnSeconds * 1e3, r.totalSeconds * 1e3,
                        r.cache.hitRate() * 100,
                        r.otThroughput(params.usableOts()) / 1e6,
                        r.areaMm2, r.powerWatt);
        }
    }

    std::printf("\nReading guide: LPN scales with ranks (rank-level "
                "parallelism);\nSPCOT is rank-independent; the knee "
                "where SPCOT == LPN is the paper's\nbalanced design "
                "point (Fig. 13(b)).\n");
    return 0;
}
