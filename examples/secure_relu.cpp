/**
 * @file
 * Secure ReLU end to end: two parties hold additive shares of a
 * vector of fixed-point activations and compute shares of ReLU(x)
 * using only XOR/addition and pre-generated COT correlations — the
 * exact online workload (Sec. 2.2) whose preprocessing Ironman
 * accelerates.
 *
 * Both OT directions are needed (GMW AND gates are symmetric), which
 * is the role-switching requirement motivating the unified
 * architecture of Sec. 5.2.
 *
 * Run: ./secure_relu
 */

#include <cinttypes>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "net/two_party.h"
#include "ot/ferret_params.h"
#include "ppml/cot_engine.h"
#include "ppml/secure_compute.h"

using namespace ironman;
using ppml::FerretCotEngine;
using ppml::SecureCompute;

int
main()
{
    constexpr unsigned kWidth = 32;
    constexpr size_t kElems = 256;

    // A toy activation vector in fixed point (already secret in a real
    // deployment; sampled here so we can verify the result).
    Rng rng(7);
    std::vector<int64_t> activations(kElems);
    for (auto &a : activations)
        a = int64_t(rng.nextBelow(1 << 16)) - (1 << 15);

    // Additive shares mod 2^32.
    auto msk = [](uint64_t v) { return v & 0xffffffffULL; };
    std::vector<uint64_t> share0(kElems), share1(kElems);
    for (size_t i = 0; i < kElems; ++i) {
        share0[i] = msk(rng.nextUint64());
        share1[i] = msk(uint64_t(activations[i]) - share0[i]);
    }

    // Preprocessing: a persistent dual-direction OTE engine per party
    // (two Ferret sessions with swapped roles, exactly the
    // role-switching execution Ironman's unified architecture runs).
    // The engine self-refills, so no COT budget needs to be sized up
    // front.
    size_t budget = kElems * (4 * (kWidth - 1) + 2);
    ot::FerretParams params = ot::tinyTestParams();
    std::printf("preprocessing: ~%zu COT correlations per direction, "
                "supplied by persistent Ferret engines (%zu per "
                "extension)\n",
                budget, params.usableOts());

    std::vector<uint64_t> out0, out1;
    size_t used = 0;
    uint64_t extensions = 0;
    auto wire = net::runTwoParty(
        [&](net::Channel &ch) {
            FerretCotEngine engine(ch, 0, params, /*setup_seed=*/99);
            SecureCompute party0(ch, 0, engine, kWidth);
            out0 = party0.relu(share0);
            used = party0.cotsConsumed();
            extensions = engine.extensionsRun();
        },
        [&](net::Channel &ch) {
            FerretCotEngine engine(ch, 1, params, /*setup_seed=*/99);
            SecureCompute party1(ch, 1, engine, kWidth);
            out1 = party1.relu(share1);
        });

    // Reconstruct and verify.
    size_t ok = 0;
    for (size_t i = 0; i < kElems; ++i) {
        int64_t got = int64_t(msk(out0[i] + out1[i]));
        int64_t expect = activations[i] > 0 ? activations[i] : 0;
        ok += (got == expect);
    }
    std::printf("secure ReLU on %zu elements: %zu correct\n", kElems, ok);
    std::printf("consumed %zu COTs (%.1f per ReLU) over %" PRIu64
                " OTE extensions, moved %" PRIu64 " KB online\n",
                used, double(used) / kElems, extensions,
                wire.totalBytes / 1024);
    std::printf("-> preprocessing at CPU OTE (~2.5M COT/s): %.1f ms; "
                "with Ironman (~450M COT/s): %.3f ms\n",
                used / 2.5e6 * 1e3, used / 450e6 * 1e3);
    return ok == kElems ? 0 : 1;
}
