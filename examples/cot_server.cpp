/**
 * @file
 * COT service daemon demo: serve correlated randomness to concurrent
 * clients over real sockets from warm pooled engines.
 *
 *   ./cot_server --tcp 17517               # loopback TCP, run forever
 *   ./cot_server --tcp 0                   # ephemeral port (printed)
 *   ./cot_server --unix /tmp/ironman.sock  # Unix-domain transport
 *   ./cot_server --tcp 17517 --sessions 2  # exit after 2 sessions (CI)
 *   ./cot_server --tcp 17517 --metrics-port 17519  # scrape surface
 *   ./cot_server --tcp 17517 --status 5    # one-line status every 5s
 *
 * --metrics-port serves the process metrics registry as `name value`
 * text over plain HTTP; --metrics-json FILE rewrites a JSON snapshot
 * at every status interval. Out-of-band: the MPC wire is untouched.
 *
 * Pair with ./cot_client. The engine pool keeps finished sessions'
 * engines warm, so a burst of same-shape clients pays the LPN tape
 * build once per concurrency slot, not once per connection.
 */

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "common/metrics.h"
#include "common/trace.h"
#include "net/flight_recorder.h"
#include "net/metrics_endpoint.h"
#include "svc/cot_server.h"

using namespace ironman;

namespace {

/** Set by SIGUSR1; the tick loop answers with an all-sessions flight
 * recorder dump. */
std::atomic<bool> g_flight_signal{false};

void
onFlightSignal(int)
{
    g_flight_signal.store(true);
}

} // namespace

int
main(int argc, char **argv)
{
    uint16_t tcp_port = 0;
    bool use_tcp = false;
    std::string unix_path;
    long max_sessions = -1; // -1 = serve forever
    int engine_threads = 1;
    int metrics_port = -1; // -1 = no endpoint; 0 = ephemeral
    long status_secs = 0;  // 0 = no periodic status line
    std::string metrics_json;
    std::string trace_file;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--tcp") {
            use_tcp = true;
            tcp_port = uint16_t(std::atoi(next()));
        } else if (arg == "--unix") {
            unix_path = next();
        } else if (arg == "--sessions") {
            max_sessions = std::atol(next());
        } else if (arg == "--threads") {
            engine_threads = std::atoi(next());
        } else if (arg == "--metrics-port") {
            metrics_port = std::atoi(next());
        } else if (arg == "--status") {
            status_secs = std::atol(next());
        } else if (arg == "--metrics-json") {
            metrics_json = next();
        } else if (arg == "--trace") {
            trace_file = next();
        } else {
            std::fprintf(stderr,
                         "usage: cot_server [--tcp PORT | --unix PATH] "
                         "[--sessions N] [--threads T] "
                         "[--metrics-port PORT] [--status SECS] "
                         "[--metrics-json FILE] [--trace FILE]\n");
            return 2;
        }
    }
    if (!use_tcp && unix_path.empty()) {
        use_tcp = true; // default: loopback TCP, ephemeral port
    }

    std::signal(SIGUSR1, onFlightSignal);
    if (!trace_file.empty()) {
        trace::setEnabled(true);
        trace::setParty(1); // service operator = MPC party 1
    }

    svc::CotServer::Config cfg;
    cfg.engineThreads = engine_threads;
    svc::CotServer server(cfg);

    if (use_tcp) {
        const uint16_t port = server.listenTcp(tcp_port);
        std::printf("cot_server: listening on 127.0.0.1:%u "
                    "(engine threads %d)\n",
                    unsigned(port), engine_threads);
    } else {
        server.listenUnix(unix_path);
        std::printf("cot_server: listening on %s (engine threads %d)\n",
                    unix_path.c_str(), engine_threads);
    }
    net::MetricsEndpoint metrics_ep;
    if (metrics_port >= 0) {
        const uint16_t mp =
            metrics_ep.listenTcp(uint16_t(metrics_port));
        std::printf("cot_server: metrics on 127.0.0.1:%u\n",
                    unsigned(mp));
    }
    std::fflush(stdout);

    // Serve until the requested session count completed (or forever).
    uint64_t last_report = 0;
    uint64_t status_cots = server.cotsServed();
    uint64_t status_t0_us = metrics::nowUs();
    uint64_t ticks = 0;
    for (;;) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        ++ticks;
        if (status_secs > 0 && ticks % (uint64_t(status_secs) * 10) == 0) {
            const uint64_t now_us = metrics::nowUs();
            const uint64_t cots_now = server.cotsServed();
            const double secs = double(now_us - status_t0_us) / 1e6;
            const double cotps =
                secs > 0 ? double(cots_now - status_cots) / secs : 0.0;
            const auto dur = metrics::Registry::instance()
                                 .histogramSnapshot(
                                     "cot_session_duration_us");
            std::printf("cot_server: status %.0f COTs/s, %zu active, "
                        "%llu reaped, session p99 %llu us\n",
                        cotps, server.activeSessions(),
                        (unsigned long long)server.sessionsReaped(),
                        (unsigned long long)dur.p99);
            std::fflush(stdout);
            status_cots = cots_now;
            status_t0_us = now_us;
            if (!metrics_json.empty())
                metrics::Registry::instance().writeJson(metrics_json);
        }
        if (g_flight_signal.exchange(false))
            net::dumpAllFlightRecorders("SIGUSR1");
        const uint64_t done = server.sessionsServed();
        if (done != last_report) {
            std::printf("cot_server: %llu sessions served, %llu "
                        "extensions, %llu COTs, %llu engines built\n",
                        (unsigned long long)done,
                        (unsigned long long)server.extensionsServed(),
                        (unsigned long long)server.cotsServed(),
                        (unsigned long long)(
                            server.pool().sendersCreated() +
                            server.pool().receiversCreated()));
            std::fflush(stdout);
            last_report = done;
        }
        if (max_sessions >= 0 && done >= uint64_t(max_sessions) &&
            server.activeSessions() == 0)
            break;
    }
    server.stop();
    metrics_ep.stop();
    if (!metrics_json.empty())
        metrics::Registry::instance().writeJson(metrics_json);
    if (!trace_file.empty() && !trace::writeChromeTrace(trace_file))
        std::fprintf(stderr, "cot_server: cannot write trace %s\n",
                     trace_file.c_str());
    std::printf("cot_server: done (%llu sessions)\n",
                (unsigned long long)server.sessionsServed());
    return 0;
}
