/**
 * @file
 * COT service daemon demo: serve correlated randomness to concurrent
 * clients over real sockets from warm pooled engines.
 *
 *   ./cot_server --tcp 17517               # loopback TCP, run forever
 *   ./cot_server --tcp 0                   # ephemeral port (printed)
 *   ./cot_server --unix /tmp/ironman.sock  # Unix-domain transport
 *   ./cot_server --tcp 17517 --sessions 2  # exit after 2 sessions (CI)
 *
 * Pair with ./cot_client. The engine pool keeps finished sessions'
 * engines warm, so a burst of same-shape clients pays the LPN tape
 * build once per concurrency slot, not once per connection.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "svc/cot_server.h"

using namespace ironman;

int
main(int argc, char **argv)
{
    uint16_t tcp_port = 0;
    bool use_tcp = false;
    std::string unix_path;
    long max_sessions = -1; // -1 = serve forever
    int engine_threads = 1;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--tcp") {
            use_tcp = true;
            tcp_port = uint16_t(std::atoi(next()));
        } else if (arg == "--unix") {
            unix_path = next();
        } else if (arg == "--sessions") {
            max_sessions = std::atol(next());
        } else if (arg == "--threads") {
            engine_threads = std::atoi(next());
        } else {
            std::fprintf(stderr,
                         "usage: cot_server [--tcp PORT | --unix PATH] "
                         "[--sessions N] [--threads T]\n");
            return 2;
        }
    }
    if (!use_tcp && unix_path.empty()) {
        use_tcp = true; // default: loopback TCP, ephemeral port
    }

    svc::CotServer::Config cfg;
    cfg.engineThreads = engine_threads;
    svc::CotServer server(cfg);

    if (use_tcp) {
        const uint16_t port = server.listenTcp(tcp_port);
        std::printf("cot_server: listening on 127.0.0.1:%u "
                    "(engine threads %d)\n",
                    unsigned(port), engine_threads);
    } else {
        server.listenUnix(unix_path);
        std::printf("cot_server: listening on %s (engine threads %d)\n",
                    unix_path.c_str(), engine_threads);
    }
    std::fflush(stdout);

    // Serve until the requested session count completed (or forever).
    uint64_t last_report = 0;
    for (;;) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        const uint64_t done = server.sessionsServed();
        if (done != last_report) {
            std::printf("cot_server: %llu sessions served, %llu "
                        "extensions, %llu COTs, %llu engines built\n",
                        (unsigned long long)done,
                        (unsigned long long)server.extensionsServed(),
                        (unsigned long long)server.cotsServed(),
                        (unsigned long long)(
                            server.pool().sendersCreated() +
                            server.pool().receiversCreated()));
            std::fflush(stdout);
            last_report = done;
        }
        if (max_sessions >= 0 && done >= uint64_t(max_sessions) &&
            server.activeSessions() == 0)
            break;
    }
    server.stop();
    std::printf("cot_server: done (%llu sessions)\n",
                (unsigned long long)server.sessionsServed());
    return 0;
}
