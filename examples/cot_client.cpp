/**
 * @file
 * COT service client demo: connect to a cot_server, stream extension
 * batches through the background reservoir, and report the delivered
 * correlation rate.
 *
 *   ./cot_client --tcp 127.0.0.1:17517 --ots 1000000
 *   ./cot_client --unix /tmp/ironman.sock --role send
 *
 * The reservoir keeps one batch of stock ahead of the consumer, so
 * the take loop below measures service throughput as an application
 * would see it (extension latency hidden behind consumption).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/stats.h"
#include "common/trace.h"
#include "ot/ferret_params.h"
#include "svc/cot_client.h"
#include "svc/reservoir.h"

using namespace ironman;

int
main(int argc, char **argv)
{
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    std::string unix_path;
    uint64_t want_ots = 1000000;
    std::string trace_file;
    svc::CotClient::Options opt;
    opt.setupSeed = 0x5eedULL ^ uint64_t(::getpid()) << 16;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--tcp") {
            const std::string hp = next();
            const size_t colon = hp.rfind(':');
            if (colon == std::string::npos) {
                port = uint16_t(std::atoi(hp.c_str()));
            } else {
                host = hp.substr(0, colon);
                port = uint16_t(std::atoi(hp.c_str() + colon + 1));
            }
        } else if (arg == "--unix") {
            unix_path = next();
        } else if (arg == "--ots") {
            want_ots = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--seed") {
            opt.setupSeed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--role") {
            const std::string r = next();
            opt.role = r == "send" ? svc::Role::Sender
                                   : svc::Role::Receiver;
        } else if (arg == "--trace") {
            trace_file = next();
        } else {
            std::fprintf(
                stderr,
                "usage: cot_client [--tcp HOST:PORT | --unix PATH] "
                "[--ots N] [--role recv|send] [--seed S] "
                "[--trace FILE]\n");
            return 2;
        }
    }

    if (!trace_file.empty()) {
        trace::setEnabled(true);
        trace::setParty(0);
        trace::setThreadLabel("client");
    }

    const ot::FerretParams p = ot::tinyAlignedParams();
    std::unique_ptr<svc::CotClient> client;
    try {
        client = unix_path.empty()
                     ? svc::CotClient::connectTcp(host, port, p, opt)
                     : svc::CotClient::connectUnix(unix_path, p, opt);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "cot_client: connect failed: %s\n",
                     e.what());
        return 1;
    }
    std::printf("cot_client: session %llu, role %s, %zu OTs/batch\n",
                (unsigned long long)client->sessionId(),
                svc::roleName(client->role()), client->usableOts());

    Timer timer;
    uint64_t got = 0;
    {
        svc::Reservoir reservoir(*client);
        BitVec bits;
        std::vector<Block> blocks;
        const size_t chunk = client->usableOts() / 4 + 1;
        while (got < want_ots) {
            if (client->role() == svc::Role::Receiver)
                reservoir.takeRecv(chunk, &bits, &blocks);
            else
                reservoir.takeSend(chunk, &blocks);
            got += chunk;
        }
    }
    const double secs = timer.seconds();
    client->close();
    if (!trace_file.empty() && !trace::writeChromeTrace(trace_file))
        std::fprintf(stderr, "cot_client: cannot write trace %s\n",
                     trace_file.c_str());

    std::printf("cot_client: %llu COTs in %.3f s -> %.2f M OT/s "
                "(%llu extensions, %.1f KB sent)\n",
                (unsigned long long)got, secs, got / secs / 1e6,
                (unsigned long long)client->extensionsRun(),
                client->bytesSent() / 1024.0);
    return 0;
}
