/**
 * @file
 * Private-inference daemon demo: serve GMW MLP inference over real
 * sockets, with an embedded COT service feeding reservoir-supplied
 * sessions.
 *
 *   ./infer_server --tcp 17617                    # + ephemeral COT port
 *   ./infer_server --tcp 17617 --cot-tcp 17618    # pin both ports
 *   ./infer_server --tcp 17617 --sessions 2       # exit after 2 (CI)
 *   ./infer_server --tcp 17617 --metrics-port 17619  # scrape surface
 *   ./infer_server --tcp 17617 --status 5         # one-liner every 5s
 *
 * --metrics-port serves the process metrics registry as Prometheus-
 * style `name value` text over plain HTTP (curl-able); --metrics-json
 * FILE rewrites a JSON snapshot of the same registry at every status
 * interval. Neither touches the MPC wire (DESIGN.md invariant 17).
 *
 * Pair with ./infer_client. One process runs both daemons: the
 * inference server is MPC party 1 AND the COT-service operator, so a
 * reservoir-fed client's two COT sessions deliver the client halves
 * to the client and the operator halves (via svc::OperatorStock)
 * straight to the inference engine — the paper's Sec. 5.2
 * role-switching architecture as served traffic.
 */

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "common/metrics.h"
#include "common/trace.h"
#include "infer/infer_server.h"
#include "net/flight_recorder.h"
#include "net/metrics_endpoint.h"
#include "svc/cot_server.h"
#include "svc/operator_stock.h"

using namespace ironman;

namespace {

/** Set by the --drain-on signal handler; polled by the main loop. */
std::atomic<int> g_drain_signal{0};

void
onDrainSignal(int sig)
{
    g_drain_signal.store(sig);
}

/** Set by SIGUSR1; the main loop answers with an all-sessions flight
 * recorder dump (async-signal-safe handler, cold work on the tick). */
std::atomic<bool> g_flight_signal{false};

void
onFlightSignal(int)
{
    g_flight_signal.store(true);
}

} // namespace

int
main(int argc, char **argv)
{
    uint16_t infer_port = 0;
    uint16_t cot_port = 0;
    long max_sessions = -1; // -1 = serve forever
    int engine_threads = 1;
    bool drain_on_term = false;
    int metrics_port = -1; // -1 = no endpoint; 0 = ephemeral
    long status_secs = 0;  // 0 = no periodic status line
    std::string metrics_json;
    std::string trace_file;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--tcp") {
            infer_port = uint16_t(std::atoi(next()));
        } else if (arg == "--cot-tcp") {
            cot_port = uint16_t(std::atoi(next()));
        } else if (arg == "--sessions") {
            max_sessions = std::atol(next());
        } else if (arg == "--threads") {
            engine_threads = std::atoi(next());
        } else if (arg == "--drain-on") {
            // Rolling-restart posture: the named signal triggers a
            // graceful drain (finish in-flight sessions, refuse new
            // connects) instead of the default hard kill.
            const std::string sig = next();
            if (sig != "SIGTERM") {
                std::fprintf(stderr,
                             "infer_server: only --drain-on SIGTERM "
                             "is supported\n");
                return 2;
            }
            drain_on_term = true;
        } else if (arg == "--metrics-port") {
            metrics_port = std::atoi(next());
        } else if (arg == "--status") {
            status_secs = std::atol(next());
        } else if (arg == "--metrics-json") {
            metrics_json = next();
        } else if (arg == "--trace") {
            trace_file = next();
        } else {
            std::fprintf(stderr,
                         "usage: infer_server [--tcp PORT] "
                         "[--cot-tcp PORT] [--sessions N] "
                         "[--threads T] [--drain-on SIGTERM] "
                         "[--metrics-port PORT] [--status SECS] "
                         "[--metrics-json FILE] [--trace FILE]\n");
            return 2;
        }
    }

    if (drain_on_term)
        std::signal(SIGTERM, onDrainSignal);
    std::signal(SIGUSR1, onFlightSignal);
    if (!trace_file.empty()) {
        trace::setEnabled(true);
        trace::setParty(1); // the inference server is MPC party 1
    }

    // Daemon posture: only the shapes this deployment actually serves
    // — an unlisted (if structurally valid) hello gets a clean
    // wire-level reject instead of a per-session multi-MB engine.
    const std::vector<ot::FerretParams> allowed = {
        ot::tinyTestParams(), ot::tinyAlignedParams()};

    // The embedded COT service + the operator's retained halves.
    svc::OperatorStock stock;
    svc::CotServer::Config cot_cfg;
    cot_cfg.engineThreads = engine_threads;
    cot_cfg.paramsAllowlist = allowed;
    svc::CotServer cot(cot_cfg);
    stock.attach(cot);
    const uint16_t bound_cot = cot.listenTcp(cot_port);

    infer::InferServer::Config cfg;
    cfg.engineThreads = engine_threads;
    cfg.engineParamsAllowlist = allowed;
    infer::InferServer server(cfg);
    server.attachOperatorStock(stock);
    const uint16_t bound = server.listenTcp(infer_port);

    std::printf("infer_server: inference on 127.0.0.1:%u, COT service "
                "on 127.0.0.1:%u (engine threads %d)\n",
                unsigned(bound), unsigned(bound_cot), engine_threads);

    net::MetricsEndpoint metrics_ep;
    if (metrics_port >= 0) {
        const uint16_t mp =
            metrics_ep.listenTcp(uint16_t(metrics_port));
        std::printf("infer_server: metrics on 127.0.0.1:%u\n",
                    unsigned(mp));
    }
    std::fflush(stdout);

    uint64_t last_report = 0;
    uint64_t status_images = server.imagesServed();
    uint64_t status_t0_us = metrics::nowUs();
    uint64_t ticks = 0;
    for (;;) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        ++ticks;
        if (status_secs > 0 && ticks % (uint64_t(status_secs) * 10) == 0) {
            const uint64_t now_us = metrics::nowUs();
            const uint64_t images_now = server.imagesServed();
            const double secs =
                double(now_us - status_t0_us) / 1e6;
            const double imgps =
                secs > 0 ? double(images_now - status_images) / secs
                         : 0.0;
            const auto lat = metrics::Registry::instance()
                                 .histogramSnapshot(
                                     "infer_commit_latency_us");
            std::printf(
                "infer_server: status %.1f img/s, %zu active, "
                "operator bank %lld, reservoir stock %lld, commit "
                "p99 %llu us\n",
                imgps, server.activeSessions(),
                (long long)metrics::Registry::instance().gaugeValue(
                    "svc_operator_bank_depth"),
                (long long)metrics::Registry::instance().gaugeValue(
                    "svc_reservoir_stock_cots"),
                (unsigned long long)lat.p99);
            std::fflush(stdout);
            status_images = images_now;
            status_t0_us = now_us;
            if (!metrics_json.empty())
                metrics::Registry::instance().writeJson(metrics_json);
        }
        if (g_flight_signal.exchange(false))
            net::dumpAllFlightRecorders("SIGUSR1");
        const uint64_t done = server.sessionsServed();
        if (done != last_report) {
            std::printf(
                "infer_server: %llu sessions, %llu requests, %llu "
                "images, %llu COTs consumed, %llu engines built\n",
                (unsigned long long)done,
                (unsigned long long)server.requestsServed(),
                (unsigned long long)server.imagesServed(),
                (unsigned long long)server.cotsConsumed(),
                (unsigned long long)(cot.pool().sendersCreated() +
                                     cot.pool().receiversCreated()));
            std::fflush(stdout);
            last_report = done;
        }
        if (max_sessions >= 0 && done >= uint64_t(max_sessions) &&
            server.activeSessions() == 0)
            break;
        if (g_drain_signal.load() != 0) {
            std::printf("infer_server: SIGTERM, draining...\n");
            std::fflush(stdout);
            const bool infer_clean = server.drain(10000);
            const bool cot_clean = cot.drain(10000);
            std::printf("infer_server: drained %s (%llu sessions "
                        "served)\n",
                        infer_clean && cot_clean ? "clean" : "forced",
                        (unsigned long long)server.sessionsServed());
            break;
        }
    }
    server.stop();
    cot.stop();
    metrics_ep.stop();
    // Final snapshot after the last session's counters landed, so a
    // harness reading the file post-exit sees the complete run.
    if (!metrics_json.empty())
        metrics::Registry::instance().writeJson(metrics_json);
    if (!trace_file.empty()) {
        if (trace::writeChromeTrace(trace_file))
            std::printf("infer_server: trace written to %s\n",
                        trace_file.c_str());
        else
            std::fprintf(stderr,
                         "infer_server: cannot write trace %s\n",
                         trace_file.c_str());
    }
    std::printf("infer_server: done (%llu sessions)\n",
                (unsigned long long)server.sessionsServed());
    return 0;
}
