/**
 * @file
 * Private-inference daemon demo: serve GMW MLP inference over real
 * sockets, with an embedded COT service feeding reservoir-supplied
 * sessions.
 *
 *   ./infer_server --tcp 17617                    # + ephemeral COT port
 *   ./infer_server --tcp 17617 --cot-tcp 17618    # pin both ports
 *   ./infer_server --tcp 17617 --sessions 2       # exit after 2 (CI)
 *
 * Pair with ./infer_client. One process runs both daemons: the
 * inference server is MPC party 1 AND the COT-service operator, so a
 * reservoir-fed client's two COT sessions deliver the client halves
 * to the client and the operator halves (via svc::OperatorStock)
 * straight to the inference engine — the paper's Sec. 5.2
 * role-switching architecture as served traffic.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "infer/infer_server.h"
#include "svc/cot_server.h"
#include "svc/operator_stock.h"

using namespace ironman;

int
main(int argc, char **argv)
{
    uint16_t infer_port = 0;
    uint16_t cot_port = 0;
    long max_sessions = -1; // -1 = serve forever
    int engine_threads = 1;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--tcp") {
            infer_port = uint16_t(std::atoi(next()));
        } else if (arg == "--cot-tcp") {
            cot_port = uint16_t(std::atoi(next()));
        } else if (arg == "--sessions") {
            max_sessions = std::atol(next());
        } else if (arg == "--threads") {
            engine_threads = std::atoi(next());
        } else {
            std::fprintf(stderr,
                         "usage: infer_server [--tcp PORT] "
                         "[--cot-tcp PORT] [--sessions N] "
                         "[--threads T]\n");
            return 2;
        }
    }

    // Daemon posture: only the shapes this deployment actually serves
    // — an unlisted (if structurally valid) hello gets a clean
    // wire-level reject instead of a per-session multi-MB engine.
    const std::vector<ot::FerretParams> allowed = {
        ot::tinyTestParams(), ot::tinyAlignedParams()};

    // The embedded COT service + the operator's retained halves.
    svc::OperatorStock stock;
    svc::CotServer::Config cot_cfg;
    cot_cfg.engineThreads = engine_threads;
    cot_cfg.paramsAllowlist = allowed;
    svc::CotServer cot(cot_cfg);
    stock.attach(cot);
    const uint16_t bound_cot = cot.listenTcp(cot_port);

    infer::InferServer::Config cfg;
    cfg.engineThreads = engine_threads;
    cfg.engineParamsAllowlist = allowed;
    infer::InferServer server(cfg);
    server.attachOperatorStock(stock);
    const uint16_t bound = server.listenTcp(infer_port);

    std::printf("infer_server: inference on 127.0.0.1:%u, COT service "
                "on 127.0.0.1:%u (engine threads %d)\n",
                unsigned(bound), unsigned(bound_cot), engine_threads);
    std::fflush(stdout);

    uint64_t last_report = 0;
    for (;;) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        const uint64_t done = server.sessionsServed();
        if (done != last_report) {
            std::printf(
                "infer_server: %llu sessions, %llu requests, %llu "
                "images, %llu COTs consumed, %llu engines built\n",
                (unsigned long long)done,
                (unsigned long long)server.requestsServed(),
                (unsigned long long)server.imagesServed(),
                (unsigned long long)server.cotsConsumed(),
                (unsigned long long)(cot.pool().sendersCreated() +
                                     cot.pool().receiversCreated()));
            std::fflush(stdout);
            last_report = done;
        }
        if (max_sessions >= 0 && done >= uint64_t(max_sessions) &&
            server.activeSessions() == 0)
            break;
    }
    server.stop();
    cot.stop();
    std::printf("infer_server: done (%llu sessions)\n",
                (unsigned long long)server.sessionsServed());
    return 0;
}
