/**
 * @file
 * Private-inference daemon demo: serve GMW MLP inference over real
 * sockets, with an embedded COT service feeding reservoir-supplied
 * sessions.
 *
 *   ./infer_server --tcp 17617                    # + ephemeral COT port
 *   ./infer_server --tcp 17617 --cot-tcp 17618    # pin both ports
 *   ./infer_server --tcp 17617 --sessions 2       # exit after 2 (CI)
 *
 * Pair with ./infer_client. One process runs both daemons: the
 * inference server is MPC party 1 AND the COT-service operator, so a
 * reservoir-fed client's two COT sessions deliver the client halves
 * to the client and the operator halves (via svc::OperatorStock)
 * straight to the inference engine — the paper's Sec. 5.2
 * role-switching architecture as served traffic.
 */

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "infer/infer_server.h"
#include "svc/cot_server.h"
#include "svc/operator_stock.h"

using namespace ironman;

namespace {

/** Set by the --drain-on signal handler; polled by the main loop. */
std::atomic<int> g_drain_signal{0};

void
onDrainSignal(int sig)
{
    g_drain_signal.store(sig);
}

} // namespace

int
main(int argc, char **argv)
{
    uint16_t infer_port = 0;
    uint16_t cot_port = 0;
    long max_sessions = -1; // -1 = serve forever
    int engine_threads = 1;
    bool drain_on_term = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--tcp") {
            infer_port = uint16_t(std::atoi(next()));
        } else if (arg == "--cot-tcp") {
            cot_port = uint16_t(std::atoi(next()));
        } else if (arg == "--sessions") {
            max_sessions = std::atol(next());
        } else if (arg == "--threads") {
            engine_threads = std::atoi(next());
        } else if (arg == "--drain-on") {
            // Rolling-restart posture: the named signal triggers a
            // graceful drain (finish in-flight sessions, refuse new
            // connects) instead of the default hard kill.
            const std::string sig = next();
            if (sig != "SIGTERM") {
                std::fprintf(stderr,
                             "infer_server: only --drain-on SIGTERM "
                             "is supported\n");
                return 2;
            }
            drain_on_term = true;
        } else {
            std::fprintf(stderr,
                         "usage: infer_server [--tcp PORT] "
                         "[--cot-tcp PORT] [--sessions N] "
                         "[--threads T] [--drain-on SIGTERM]\n");
            return 2;
        }
    }

    if (drain_on_term)
        std::signal(SIGTERM, onDrainSignal);

    // Daemon posture: only the shapes this deployment actually serves
    // — an unlisted (if structurally valid) hello gets a clean
    // wire-level reject instead of a per-session multi-MB engine.
    const std::vector<ot::FerretParams> allowed = {
        ot::tinyTestParams(), ot::tinyAlignedParams()};

    // The embedded COT service + the operator's retained halves.
    svc::OperatorStock stock;
    svc::CotServer::Config cot_cfg;
    cot_cfg.engineThreads = engine_threads;
    cot_cfg.paramsAllowlist = allowed;
    svc::CotServer cot(cot_cfg);
    stock.attach(cot);
    const uint16_t bound_cot = cot.listenTcp(cot_port);

    infer::InferServer::Config cfg;
    cfg.engineThreads = engine_threads;
    cfg.engineParamsAllowlist = allowed;
    infer::InferServer server(cfg);
    server.attachOperatorStock(stock);
    const uint16_t bound = server.listenTcp(infer_port);

    std::printf("infer_server: inference on 127.0.0.1:%u, COT service "
                "on 127.0.0.1:%u (engine threads %d)\n",
                unsigned(bound), unsigned(bound_cot), engine_threads);
    std::fflush(stdout);

    uint64_t last_report = 0;
    for (;;) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        const uint64_t done = server.sessionsServed();
        if (done != last_report) {
            std::printf(
                "infer_server: %llu sessions, %llu requests, %llu "
                "images, %llu COTs consumed, %llu engines built\n",
                (unsigned long long)done,
                (unsigned long long)server.requestsServed(),
                (unsigned long long)server.imagesServed(),
                (unsigned long long)server.cotsConsumed(),
                (unsigned long long)(cot.pool().sendersCreated() +
                                     cot.pool().receiversCreated()));
            std::fflush(stdout);
            last_report = done;
        }
        if (max_sessions >= 0 && done >= uint64_t(max_sessions) &&
            server.activeSessions() == 0)
            break;
        if (g_drain_signal.load() != 0) {
            std::printf("infer_server: SIGTERM, draining...\n");
            std::fflush(stdout);
            const bool infer_clean = server.drain(10000);
            const bool cot_clean = cot.drain(10000);
            std::printf("infer_server: drained %s (%llu sessions "
                        "served)\n",
                        infer_clean && cot_clean ? "clean" : "forced",
                        (unsigned long long)server.sessionsServed());
            break;
        }
    }
    server.stop();
    cot.stop();
    std::printf("infer_server: done (%llu sessions)\n",
                (unsigned long long)server.sessionsServed());
    return 0;
}
