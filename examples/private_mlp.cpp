/**
 * @file
 * End-to-end private inference of a small MLP — the full stack in one
 * program:
 *
 *   1. Each party brings up one persistent FerretCotEngine: two
 *      *real* Ferret OTE sessions with swapped sender/receiver roles
 *      (the role-switching scenario the unified architecture of
 *      Sec. 5.2 exists for) that stay alive for the whole inference
 *      and refill themselves when a layer drains them.
 *   2. The client secret-shares its input; the model (weights) is
 *      public, so linear layers are local on shares.
 *   3. ReLU layers run through the GMW engine, drawing COTs from the
 *      engine of step 1 — no per-layer setup.
 *   4. The output reconstructs to exactly the plaintext inference.
 *
 * Run: ./private_mlp
 */

#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "net/two_party.h"
#include "ot/ferret_params.h"
#include "ppml/cot_engine.h"
#include "ppml/secure_compute.h"

using namespace ironman;
using ppml::FerretCotEngine;
using ppml::SecureCompute;

namespace {

constexpr unsigned kWidth = 32;
constexpr int kFracBits = 8; // 24.8 fixed point

uint64_t
msk(uint64_t v)
{
    return v & 0xffffffffULL;
}

int64_t
toSigned(uint64_t v)
{
    return (v & 0x80000000ULL) ? int64_t(v) - (1LL << 32) : int64_t(v);
}

/** Public model: two dense layers with fixed-point weights. */
struct Mlp
{
    static constexpr int kIn = 16, kHidden = 8, kOut = 4;
    std::vector<int64_t> w1; // kHidden x kIn
    std::vector<int64_t> w2; // kOut x kHidden

    explicit Mlp(Rng &rng)
    {
        w1.resize(kHidden * kIn);
        w2.resize(kOut * kHidden);
        for (auto &w : w1)
            w = int64_t(rng.nextBelow(512)) - 256; // [-1, 1) in 8.8
        for (auto &w : w2)
            w = int64_t(rng.nextBelow(512)) - 256;
    }
};

/**
 * Dense layer on additive shares: weights are public, so each party
 * multiplies its own shares locally (with truncation of the
 * fixed-point product — both parties truncate their share, the
 * standard local approximation).
 */
std::vector<uint64_t>
denseLocal(const std::vector<int64_t> &w, int rows, int cols,
           const std::vector<uint64_t> &x_share, bool is_party0)
{
    std::vector<uint64_t> out(rows);
    for (int r = 0; r < rows; ++r) {
        int64_t acc = 0;
        for (int c = 0; c < cols; ++c)
            acc += w[r * cols + c] * toSigned(x_share[c]);
        int64_t truncated = acc >> kFracBits;
        (void)is_party0;
        out[r] = msk(uint64_t(truncated));
    }
    return out;
}

/** Plaintext reference. */
std::vector<int64_t>
plainForward(const Mlp &mlp, const std::vector<int64_t> &x)
{
    std::vector<int64_t> h(Mlp::kHidden);
    for (int r = 0; r < Mlp::kHidden; ++r) {
        int64_t acc = 0;
        for (int c = 0; c < Mlp::kIn; ++c)
            acc += mlp.w1[r * Mlp::kIn + c] * x[c];
        h[r] = std::max<int64_t>(acc >> kFracBits, 0);
    }
    std::vector<int64_t> y(Mlp::kOut);
    for (int r = 0; r < Mlp::kOut; ++r) {
        int64_t acc = 0;
        for (int c = 0; c < Mlp::kHidden; ++c)
            acc += mlp.w2[r * Mlp::kHidden + c] * h[c];
        y[r] = acc >> kFracBits;
    }
    return y;
}

} // namespace

int
main()
{
    // --- the public model and the client's private input -------------
    Rng model_rng(11);
    Mlp mlp(model_rng);

    Rng input_rng(22);
    std::vector<int64_t> input(Mlp::kIn);
    for (auto &v : input)
        v = int64_t(input_rng.nextBelow(1024)) - 512; // [-2, 2) in 8.8

    // Client-side secret sharing.
    std::vector<uint64_t> x0(Mlp::kIn), x1(Mlp::kIn);
    for (int i = 0; i < Mlp::kIn; ++i) {
        x0[i] = msk(input_rng.nextUint64());
        x1[i] = msk(uint64_t(input[i]) - x0[i]);
    }

    // --- one session: persistent OT engine + online inference ---------
    // The engine's two role-swapped Ferret sessions prime once and
    // refill on demand; every layer draws from the same instance.
    ot::FerretParams params = ot::tinyTestParams();
    std::printf("engine: persistent dual-direction Ferret OTE "
                "(%s set) -> %zu COTs per extension per direction\n",
                params.name.c_str(), params.usableOts());

    constexpr uint64_t kSetupSeed = 33;
    std::vector<uint64_t> y0, y1;
    size_t cots_used = 0;
    uint64_t extensions = 0;
    double setup_secs = 0, online_secs = 0;
    auto run_party = [&](int party, const std::vector<uint64_t> &x_share,
                         std::vector<uint64_t> &y_out) {
        return [&, party, x_share](net::Channel &ch) {
            Timer setup_timer;
            FerretCotEngine engine(ch, party, params, kSetupSeed);
            SecureCompute sc(ch, party, engine, kWidth);
            if (party == 0)
                setup_secs = setup_timer.seconds();

            Timer online_timer;
            auto h = denseLocal(mlp.w1, Mlp::kHidden, Mlp::kIn, x_share,
                                party == 0);
            h = sc.relu(h);
            y_out = denseLocal(mlp.w2, Mlp::kOut, Mlp::kHidden, h,
                               party == 0);
            if (party == 0) {
                online_secs = online_timer.seconds();
                cots_used = sc.cotsConsumed();
                extensions = engine.extensionsRun();
            }
        };
    };
    auto wire = net::runTwoParty(run_party(0, x0, y0),
                                 run_party(1, x1, y1));
    std::printf("engine setup + priming: %.3f s; ran %llu extensions "
                "across the inference\n",
                setup_secs,
                static_cast<unsigned long long>(extensions));

    // --- reconstruct and compare ---------------------------------------
    std::vector<int64_t> expect = plainForward(mlp, input);
    std::printf("\n%-6s | %12s | %12s\n", "output", "secure", "plain");
    int ok = 0;
    for (int r = 0; r < Mlp::kOut; ++r) {
        int64_t got = toSigned(msk(y0[r] + y1[r]));
        // Local truncation of shares can differ from plaintext
        // truncation by 1 ulp per layer.
        bool close = std::llabs(got - expect[r]) <= 2;
        ok += close;
        std::printf("y[%d]   | %12lld | %12lld%s\n", r,
                    static_cast<long long>(got),
                    static_cast<long long>(expect[r]),
                    close ? "" : "  <-- MISMATCH");
    }
    std::printf("\nonline: %.3f s, %zu COTs consumed, %.1f KB moved\n",
                online_secs, cots_used, wire.totalBytes / 1024.0);
    return ok == Mlp::kOut ? 0 : 1;
}
