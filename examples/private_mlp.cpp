/**
 * @file
 * End-to-end private inference of a small MLP — the full stack in one
 * program, in process:
 *
 *   1. Each party brings up one persistent FerretCotEngine: two
 *      *real* Ferret OTE sessions with swapped sender/receiver roles
 *      (the role-switching scenario the unified architecture of
 *      Sec. 5.2 exists for) that stay alive for the whole inference
 *      and refill themselves when a layer drains them.
 *   2. The client secret-shares its input; the model (a
 *      ppml::inferenceZoo() network — weights are public) makes
 *      linear layers local on shares.
 *   3. ReLU layers run through the GMW engine via ppml::MlpRunner —
 *      the SAME layer loop the inference service serves over sockets
 *      (src/infer), so this program is the served path's in-process
 *      reference.
 *   4. The output reconstructs to the plaintext inference within the
 *      model's truncation bound.
 *
 * Run: ./private_mlp
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/stats.h"
#include "ppml/mlp_runner.h"
#include "ppml/model_zoo.h"

using namespace ironman;

int
main()
{
    const ppml::MlpModelSpec &spec = *ppml::findMlpModel("mlp-16x8x4");
    constexpr unsigned kWidth = 32;
    const ot::FerretParams params = ot::tinyTestParams();
    std::printf("model %s (%zu dense layers, %llu ReLU elements), "
                "width %u, engine: persistent dual-direction Ferret "
                "OTE (%s set) -> %zu COTs per extension per "
                "direction\n",
                spec.name.c_str(), spec.denseLayers(),
                (unsigned long long)spec.reluElements(), kWidth,
                params.name.c_str(), params.usableOts());

    // The client's private input, and the whole two-party run: the
    // reusable reference path (sharing, both parties' layer loops
    // over a MemoryDuplex, reconstruction) lives in mlp_runner.
    const std::vector<int64_t> input = ppml::sampleMlpInput(spec, 22);
    Timer timer;
    const ppml::LocalMlpResult result = ppml::runLocalMlpInference(
        spec, kWidth, {input}, /*share_seed=*/44, /*setup_seed=*/33,
        params);
    const double secs = timer.seconds();

    // Reconstruct and compare.
    const std::vector<int64_t> expect =
        ppml::mlpPlainForward(spec, input);
    const int64_t bound = ppml::mlpTruncationErrorBound(spec);
    std::printf("\n%-6s | %12s | %12s\n", "output", "secure", "plain");
    size_t ok = 0;
    for (size_t r = 0; r < expect.size(); ++r) {
        const int64_t got = result.outputs[0][r];
        const bool close = std::llabs(got - expect[r]) <= bound;
        ok += close;
        std::printf("y[%zu]   | %12lld | %12lld%s\n", r,
                    (long long)got, (long long)expect[r],
                    close ? "" : "  <-- MISMATCH");
    }
    std::printf("\n%.3f s total (setup + priming + online), %zu COTs "
                "consumed, %llu extensions, %.1f KB moved\n",
                secs, result.cotsPerParty,
                (unsigned long long)result.extensions,
                result.onlineBytes / 1024.0);
    return ok == expect.size() ? 0 : 1;
}
