/**
 * @file
 * End-to-end private inference of a small MLP — the full stack in one
 * program:
 *
 *   1. Two *real* Ferret OTE sessions run back-to-back with swapped
 *      sender/receiver roles (the role-switching scenario the unified
 *      architecture of Sec. 5.2 exists for), filling each party's COT
 *      pool in both OT directions.
 *   2. The client secret-shares its input; the model (weights) is
 *      public, so linear layers are local on shares.
 *   3. ReLU layers run through the GMW engine, consuming the COTs
 *      from step 1.
 *   4. The output reconstructs to exactly the plaintext inference.
 *
 * Run: ./private_mlp
 */

#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "net/two_party.h"
#include "ot/base_cot.h"
#include "ot/ferret.h"
#include "ot/ferret_params.h"
#include "ppml/secure_compute.h"

using namespace ironman;
using ppml::DualCotPool;
using ppml::SecureCompute;

namespace {

constexpr unsigned kWidth = 32;
constexpr int kFracBits = 8; // 24.8 fixed point

uint64_t
msk(uint64_t v)
{
    return v & 0xffffffffULL;
}

int64_t
toSigned(uint64_t v)
{
    return (v & 0x80000000ULL) ? int64_t(v) - (1LL << 32) : int64_t(v);
}

/** Public model: two dense layers with fixed-point weights. */
struct Mlp
{
    static constexpr int kIn = 16, kHidden = 8, kOut = 4;
    std::vector<int64_t> w1; // kHidden x kIn
    std::vector<int64_t> w2; // kOut x kHidden

    explicit Mlp(Rng &rng)
    {
        w1.resize(kHidden * kIn);
        w2.resize(kOut * kHidden);
        for (auto &w : w1)
            w = int64_t(rng.nextBelow(512)) - 256; // [-1, 1) in 8.8
        for (auto &w : w2)
            w = int64_t(rng.nextBelow(512)) - 256;
    }
};

/**
 * Dense layer on additive shares: weights are public, so each party
 * multiplies its own shares locally (with truncation of the
 * fixed-point product — both parties truncate their share, the
 * standard local approximation).
 */
std::vector<uint64_t>
denseLocal(const std::vector<int64_t> &w, int rows, int cols,
           const std::vector<uint64_t> &x_share, bool is_party0)
{
    std::vector<uint64_t> out(rows);
    for (int r = 0; r < rows; ++r) {
        int64_t acc = 0;
        for (int c = 0; c < cols; ++c)
            acc += w[r * cols + c] * toSigned(x_share[c]);
        int64_t truncated = acc >> kFracBits;
        (void)is_party0;
        out[r] = msk(uint64_t(truncated));
    }
    return out;
}

/** Plaintext reference. */
std::vector<int64_t>
plainForward(const Mlp &mlp, const std::vector<int64_t> &x)
{
    std::vector<int64_t> h(Mlp::kHidden);
    for (int r = 0; r < Mlp::kHidden; ++r) {
        int64_t acc = 0;
        for (int c = 0; c < Mlp::kIn; ++c)
            acc += mlp.w1[r * Mlp::kIn + c] * x[c];
        h[r] = std::max<int64_t>(acc >> kFracBits, 0);
    }
    std::vector<int64_t> y(Mlp::kOut);
    for (int r = 0; r < Mlp::kOut; ++r) {
        int64_t acc = 0;
        for (int c = 0; c < Mlp::kHidden; ++c)
            acc += mlp.w2[r * Mlp::kHidden + c] * h[c];
        y[r] = acc >> kFracBits;
    }
    return y;
}

} // namespace

int
main()
{
    // --- the public model and the client's private input -------------
    Rng model_rng(11);
    Mlp mlp(model_rng);

    Rng input_rng(22);
    std::vector<int64_t> input(Mlp::kIn);
    for (auto &v : input)
        v = int64_t(input_rng.nextBelow(1024)) - 512; // [-2, 2) in 8.8

    // Client-side secret sharing.
    std::vector<uint64_t> x0(Mlp::kIn), x1(Mlp::kIn);
    for (int i = 0; i < Mlp::kIn; ++i) {
        x0[i] = msk(input_rng.nextUint64());
        x1[i] = msk(uint64_t(input[i]) - x0[i]);
    }

    // --- preprocessing: two role-swapped Ferret sessions --------------
    // COTs needed: ReLU on kHidden elements = kHidden*(4*(w-1)+2),
    // round up generously.
    ot::FerretParams params = ot::tinyTestParams();
    std::printf("preprocessing: 2 x Ferret extension (%s set, "
                "role-swapped) -> %zu COTs per direction\n",
                params.name.c_str(), params.usableOts());

    Rng dealer(33);
    Block delta_a = dealer.nextBlock();
    Block delta_b = dealer.nextBlock();
    auto [base_sa, base_ra] =
        ot::dealBaseCots(dealer, delta_a, params.reservedCots());
    auto [base_sb, base_rb] =
        ot::dealBaseCots(dealer, delta_b, params.reservedCots());

    DualCotPool pool0, pool1;
    Timer preproc_timer;
    net::runTwoParty(
        [&](net::Channel &ch) {
            // Session A: party 0 is the OTE sender...
            ot::FerretCotSender sender(ch, params, delta_a,
                                       std::move(base_sa.q));
            Rng rng(44);
            pool0.delta = delta_a;
            pool0.sendQ = sender.extend(rng);
            // ...session B: party 0 switches to the receiver role.
            ot::FerretCotReceiver receiver(ch, params,
                                           std::move(base_rb.choice),
                                           std::move(base_rb.t));
            auto out = receiver.extend(rng);
            pool0.recvBits = std::move(out.choice);
            pool0.recvT = std::move(out.t);
        },
        [&](net::Channel &ch) {
            ot::FerretCotReceiver receiver(ch, params,
                                           std::move(base_ra.choice),
                                           std::move(base_ra.t));
            Rng rng(55);
            auto out = receiver.extend(rng);
            pool1.recvBits = std::move(out.choice);
            pool1.recvT = std::move(out.t);
            ot::FerretCotSender sender(ch, params, delta_b,
                                       std::move(base_sb.q));
            pool1.delta = delta_b;
            pool1.sendQ = sender.extend(rng);
        });
    std::printf("preprocessing done in %.3f s (both directions)\n",
                preproc_timer.seconds());

    // --- online phase --------------------------------------------------
    std::vector<uint64_t> y0, y1;
    size_t cots_used = 0;
    Timer online_timer;
    auto run_party = [&](int party, DualCotPool pool,
                         const std::vector<uint64_t> &x_share,
                         std::vector<uint64_t> &y_out) {
        return [&, party, x_share,
                pool = std::move(pool)](net::Channel &ch) mutable {
            SecureCompute sc(ch, party, std::move(pool), kWidth);
            auto h = denseLocal(mlp.w1, Mlp::kHidden, Mlp::kIn, x_share,
                                party == 0);
            h = sc.relu(h);
            y_out = denseLocal(mlp.w2, Mlp::kOut, Mlp::kHidden, h,
                               party == 0);
            if (party == 0)
                cots_used = sc.cotsConsumed();
        };
    };
    auto wire = net::runTwoParty(run_party(0, std::move(pool0), x0, y0),
                                 run_party(1, std::move(pool1), x1, y1));
    double online_secs = online_timer.seconds();

    // --- reconstruct and compare ---------------------------------------
    std::vector<int64_t> expect = plainForward(mlp, input);
    std::printf("\n%-6s | %12s | %12s\n", "output", "secure", "plain");
    int ok = 0;
    for (int r = 0; r < Mlp::kOut; ++r) {
        int64_t got = toSigned(msk(y0[r] + y1[r]));
        // Local truncation of shares can differ from plaintext
        // truncation by 1 ulp per layer.
        bool close = std::llabs(got - expect[r]) <= 2;
        ok += close;
        std::printf("y[%d]   | %12lld | %12lld%s\n", r,
                    static_cast<long long>(got),
                    static_cast<long long>(expect[r]),
                    close ? "" : "  <-- MISMATCH");
    }
    std::printf("\nonline: %.3f s, %zu COTs consumed, %.1f KB moved\n",
                online_secs, cots_used, wire.totalBytes / 1024.0);
    return ok == Mlp::kOut ? 0 : 1;
}
